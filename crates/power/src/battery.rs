//! A primary-cell battery model — the supply the paper contrasts
//! harvesters against in §II-B: "Battery can supply finite energy …
//! but while it is still operational the available power can be very
//! large. Supply characteristics are stable and known in advance."

use emc_units::{Joules, Ohms, Seconds, Volts, Watts};

/// A battery with finite capacity, a state-of-charge-dependent terminal
/// voltage and an internal series resistance.
///
/// The open-circuit voltage follows a flat-plateau curve typical of
/// primary lithium cells: nominal over most of the state of charge, with
/// a knee near empty. Loaded terminal voltage sags by `I·R_int`.
///
/// # Examples
///
/// ```
/// use emc_power::Battery;
/// use emc_units::{Joules, Seconds, Watts};
///
/// let mut batt = Battery::coin_cell();
/// let delivered = batt.draw(Watts(1e-3), Seconds(10.0));
/// assert!((delivered.0 - 1e-2).abs() < 1e-9);
/// assert!(batt.state_of_charge() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity: Joules,
    remaining: Joules,
    v_nominal: Volts,
    r_internal: Ohms,
}

impl Battery {
    /// A battery with the given capacity, nominal voltage and internal
    /// resistance.
    ///
    /// # Panics
    ///
    /// Panics unless capacity, voltage and resistance are strictly
    /// positive.
    pub fn new(capacity: Joules, v_nominal: Volts, r_internal: Ohms) -> Self {
        assert!(capacity.0 > 0.0, "capacity must be positive");
        assert!(v_nominal.0 > 0.0, "voltage must be positive");
        assert!(r_internal.0 > 0.0, "resistance must be positive");
        Self {
            capacity,
            remaining: capacity,
            v_nominal,
            r_internal,
        }
    }

    /// A 3 V lithium coin cell: 225 mAh ≈ 2.4 kJ, 15 Ω internal.
    pub fn coin_cell() -> Self {
        Self::new(Joules(2430.0), Volts(3.0), Ohms(15.0))
    }

    /// Rated capacity.
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Remaining energy.
    pub fn remaining(&self) -> Joules {
        self.remaining
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.remaining.0 / self.capacity.0
    }

    /// `true` once the cell is exhausted.
    pub fn empty(&self) -> bool {
        self.remaining.0 <= 0.0
    }

    /// Open-circuit voltage at the current state of charge: flat at
    /// nominal above 20 %, linear knee to 60 % of nominal at empty.
    pub fn open_circuit_voltage(&self) -> Volts {
        let soc = self.state_of_charge();
        if soc >= 0.2 {
            self.v_nominal
        } else {
            Volts(self.v_nominal.0 * (0.6 + 2.0 * soc))
        }
    }

    /// Terminal voltage while sourcing `load` watts (sag = `I·R_int`
    /// with `I = P/V_oc`). Zero when empty.
    pub fn terminal_voltage(&self, load: Watts) -> Volts {
        if self.empty() {
            return Volts(0.0);
        }
        let v_oc = self.open_circuit_voltage();
        let i = load.0 / v_oc.0;
        Volts((v_oc.0 - i * self.r_internal.0).max(0.0))
    }

    /// Draws `load` for `dt`; returns the energy actually delivered
    /// (truncated when the cell runs out mid-interval).
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative or `dt` non-positive.
    pub fn draw(&mut self, load: Watts, dt: Seconds) -> Joules {
        assert!(load.0 >= 0.0, "negative load");
        assert!(dt.0 > 0.0, "non-positive interval");
        let wanted = load * dt;
        let granted = Joules(wanted.0.min(self.remaining.0));
        self.remaining -= granted;
        self.remaining = self.remaining.max(Joules(0.0));
        granted
    }

    /// Lifetime at a constant load (ignoring the knee), in seconds.
    pub fn lifetime_at(&self, load: Watts) -> Seconds {
        if load.0 <= 0.0 {
            Seconds(f64::INFINITY)
        } else {
            self.remaining / load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_cell_lifetime_at_microwatts() {
        let b = Battery::coin_cell();
        // 2.43 kJ at 10 µW ≈ 7.7 years.
        let life = b.lifetime_at(Watts(10e-6));
        let years = life.0 / (365.25 * 24.0 * 3600.0);
        assert!((7.0..8.5).contains(&years), "{years} years");
    }

    #[test]
    fn draw_depletes_and_truncates() {
        let mut b = Battery::new(Joules(1.0), Volts(3.0), Ohms(10.0));
        assert_eq!(b.draw(Watts(0.4), Seconds(1.0)), Joules(0.4));
        assert!((b.state_of_charge() - 0.6).abs() < 1e-12);
        // Asking for more than remains delivers only the remainder.
        let last = b.draw(Watts(1.0), Seconds(1.0));
        assert!((last.0 - 0.6).abs() < 1e-12);
        assert!(b.empty());
        assert_eq!(b.draw(Watts(1.0), Seconds(1.0)), Joules(0.0));
    }

    #[test]
    fn voltage_plateau_and_knee() {
        let mut b = Battery::new(Joules(10.0), Volts(3.0), Ohms(10.0));
        assert_eq!(b.open_circuit_voltage(), Volts(3.0));
        // Drain to 10 % state of charge: inside the knee.
        b.draw(Watts(9.0), Seconds(1.0));
        assert!((b.state_of_charge() - 0.1).abs() < 1e-12);
        let v = b.open_circuit_voltage();
        assert!(v < Volts(3.0) && v > Volts(1.5), "knee voltage {v}");
    }

    #[test]
    fn terminal_voltage_sags_under_load() {
        let b = Battery::coin_cell();
        let idle = b.terminal_voltage(Watts(0.0));
        let loaded = b.terminal_voltage(Watts(30e-3));
        assert_eq!(idle, Volts(3.0));
        // 10 mA through 15 Ω = 150 mV sag.
        assert!(
            (idle.0 - loaded.0 - 0.15).abs() < 1e-3,
            "sag {}",
            idle.0 - loaded.0
        );
    }

    #[test]
    fn empty_cell_gives_zero_volts() {
        let mut b = Battery::new(Joules(0.5), Volts(3.0), Ohms(1.0));
        b.draw(Watts(1.0), Seconds(1.0));
        assert_eq!(b.terminal_voltage(Watts(1e-3)), Volts(0.0));
        assert_eq!(b.lifetime_at(Watts(1e-3)), Seconds(0.0));
    }

    #[test]
    fn zero_load_lives_forever() {
        let b = Battery::coin_cell();
        assert!(b.lifetime_at(Watts(0.0)).0.is_infinite());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Battery::new(Joules(0.0), Volts(3.0), Ohms(1.0));
    }
}
