//! The composed power chain: harvester → storage → DC-DC → load.

use emc_obs::{EnergyKind, Telemetry};
use emc_units::{Hertz, Joules, Seconds, Volts, Watts, Waveform};

use crate::converter::DcDcConverter;
use crate::harvester::HarvestSource;
use crate::storage::StorageCap;

/// The raw AC rail of the paper's Fig. 4: a rectified-free sinusoid
/// `dc ± amplitude` at `frequency`, clamped at 0 V (the rail cannot go
/// negative into the logic).
pub fn ac_supply(dc: Volts, amplitude: Volts, frequency: Hertz) -> Waveform {
    Waveform::sine(dc.0, amplitude.0, frequency, 0.0).clamped(0.0, f64::INFINITY)
}

/// Cumulative energy bookkeeping of a [`PowerChain`] run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChainReport {
    /// Energy produced by the harvester.
    pub harvested: Joules,
    /// Portion of harvested energy the reservoir could not accept
    /// (over-voltage clamp) — wasted.
    pub spilled: Joules,
    /// Energy delivered to the load at the regulated rail.
    pub delivered: Joules,
    /// Energy lost in conversion (inefficiency + quiescent draw).
    pub conversion_loss: Joules,
    /// Load demand that could not be met from the reservoir.
    pub deficit: Joules,
}

impl ChainReport {
    /// End-to-end efficiency: delivered / harvested (zero when nothing
    /// was harvested).
    pub fn end_to_end_efficiency(&self) -> f64 {
        if self.harvested.0 <= 0.0 {
            0.0
        } else {
            self.delivered.0 / self.harvested.0
        }
    }
}

/// Harvester, reservoir and converter composed into one steppable chain
/// (the supply side of the paper's Fig. 3 holistic view).
///
/// Call [`PowerChain::tick`] with the load's power demand for each time
/// slice; the chain harvests, buffers, converts, and accounts for every
/// nanojoule in its [`ChainReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerChain {
    source: HarvestSource,
    storage: StorageCap,
    converter: DcDcConverter,
    now: Seconds,
    report: ChainReport,
}

impl PowerChain {
    /// Composes a chain; time starts at zero.
    pub fn new(source: HarvestSource, storage: StorageCap, converter: DcDcConverter) -> Self {
        Self {
            source,
            storage,
            converter,
            now: Seconds(0.0),
            report: ChainReport::default(),
        }
    }

    /// The harvest source.
    pub fn source(&self) -> &HarvestSource {
        &self.source
    }

    /// The storage reservoir.
    pub fn storage(&self) -> &StorageCap {
        &self.storage
    }

    /// The DC-DC converter (immutable).
    pub fn converter(&self) -> &DcDcConverter {
        &self.converter
    }

    /// Mutable converter access — the holistic controller's Vdd knob.
    pub fn converter_mut(&mut self) -> &mut DcDcConverter {
        &mut self.converter
    }

    /// Current simulation time of the chain.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// The cumulative energy report.
    pub fn report(&self) -> &ChainReport {
        &self.report
    }

    /// Advances the chain by `dt` with the load drawing `load_power` at
    /// the regulated rail. Returns the energy actually delivered (≤
    /// `load_power·dt` if the reservoir runs dry).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or `load_power` is
    /// negative.
    pub fn tick(&mut self, dt: Seconds, load_power: Watts) -> Joules {
        assert!(dt.0 > 0.0, "tick duration must be positive");
        assert!(load_power.0 >= 0.0, "negative load power");
        let t_mid = Seconds(self.now.0 + dt.0 * 0.5);

        // Harvest into the reservoir.
        let harvested = self.source.power(t_mid) * dt;
        let accepted = self.storage.deposit(harvested);
        self.report.harvested += harvested;
        self.report.spilled += harvested - accepted;

        // Serve the load through the converter.
        let demand = load_power * dt;
        let v_in = self.storage.voltage();
        let mut delivered = Joules(0.0);
        if let Some(required) = self.converter.input_energy_for(demand, v_in, dt) {
            let withdrawn = self.storage.withdraw(required);
            delivered = self.converter.output_energy_for(withdrawn, v_in, dt);
            self.report.conversion_loss += withdrawn - delivered;
        }
        self.report.delivered += delivered;
        self.report.deficit += (demand - delivered).max(Joules(0.0));

        self.storage.age(dt);
        self.now = Seconds(self.now.0 + dt.0);
        delivered
    }

    /// Attempts an *all-or-nothing* energy-token withdrawal: the load
    /// wants `demand` joules delivered at the regulated rail over an
    /// activity window `dt`. The reservoir input energy (inefficiency
    /// plus quiescent draw over `dt`) is computed first; the quantum is
    /// granted only if the reservoir holds all of it. This is the
    /// energy-token discipline of `emc-sched` pushed down into the
    /// supply: a task either banks its whole quantum up front or does
    /// not start at all (no half-finished work on a dying rail).
    ///
    /// Returns `true` and books delivered/conversion-loss energy when
    /// granted; returns `false` and books the unmet `demand` as deficit
    /// when refused. Chain time does not advance — harvesting happens in
    /// [`PowerChain::tick`], which the caller is expected to drive
    /// separately for each wall-clock slice.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative or `dt` is not strictly positive.
    pub fn draw_quantum(&mut self, demand: Joules, dt: Seconds) -> bool {
        assert!(demand.0 >= 0.0, "negative quantum demand");
        assert!(dt.0 > 0.0, "quantum window must be positive");
        let v_in = self.storage.voltage();
        let Some(required) = self.converter.input_energy_for(demand, v_in, dt) else {
            self.report.deficit += demand;
            return false;
        };
        if self.storage.stored_energy() < required {
            self.report.deficit += demand;
            return false;
        }
        let withdrawn = self.storage.withdraw(required);
        let delivered = self.converter.output_energy_for(withdrawn, v_in, dt);
        self.report.delivered += delivered;
        self.report.conversion_loss += withdrawn - delivered;
        true
    }

    /// A telemetry snapshot of the chain so far: every stage of the
    /// cumulative [`ChainReport`] as a `chain/<stage>` ledger account,
    /// the reservoir's current stored energy, and efficiency / deficit /
    /// reservoir-voltage gauges. Accounts are booked in a fixed order,
    /// so the snapshot exports identical bytes for identical runs.
    pub fn telemetry(&self) -> Telemetry {
        let mut t = Telemetry::new();
        let r = &self.report;
        t.energy
            .add_joules("chain/harvested", EnergyKind::Harvested, r.harvested);
        t.energy
            .add_joules("chain/spilled", EnergyKind::Leaked, r.spilled);
        t.energy
            .add_joules("chain/delivered", EnergyKind::Dissipated, r.delivered);
        t.energy
            .add_joules("chain/conversion", EnergyKind::Leaked, r.conversion_loss);
        t.energy.add_joules(
            "chain/reservoir",
            EnergyKind::Stored,
            self.storage.stored_energy(),
        );
        let g = t.metrics.gauge("chain.efficiency");
        t.metrics.set_gauge(g, r.end_to_end_efficiency());
        let g = t.metrics.gauge("chain.deficit_j");
        t.metrics.set_gauge(g, r.deficit.0);
        let g = t.metrics.gauge("chain.reservoir.voltage_v");
        t.metrics.set_gauge(g, self.storage.voltage().0);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::VibrationHarvester;
    use emc_units::Farads;

    fn chain_100uw() -> PowerChain {
        let h = VibrationHarvester::new(Hertz(120.0), Watts(100e-6), 8.0);
        PowerChain::new(
            h.into_source(Hertz(120.0)),
            StorageCap::new(Farads(10e-6), Volts(0.0), Volts(1.2)),
            DcDcConverter::new(Volts(0.5)),
        )
    }

    #[test]
    fn ac_supply_matches_fig4_parameters() {
        let w = ac_supply(Volts(0.2), Volts(0.1), Hertz(1e6));
        assert!((w.value_at(Seconds(0.25e-6)) - 0.3).abs() < 1e-9);
        assert!((w.value_at(Seconds(0.75e-6)) - 0.1).abs() < 1e-9);
        // Larger amplitude would clamp at zero, never below.
        let deep = ac_supply(Volts(0.1), Volts(0.3), Hertz(1e6));
        assert_eq!(deep.value_at(Seconds(0.75e-6)), 0.0);
    }

    #[test]
    fn idle_chain_accumulates_charge() {
        let mut c = chain_100uw();
        for _ in 0..100 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        // 100 µW × 100 ms = 10 µJ harvested (minus nothing: no load).
        assert!((c.report().harvested.0 - 10e-6).abs() < 1e-8);
        assert!(c.storage().voltage().0 > 0.9);
        assert_eq!(c.report().delivered.0, 0.0);
    }

    #[test]
    fn sustainable_load_is_served() {
        let mut c = chain_100uw();
        // Pre-charge.
        for _ in 0..50 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        // 50 µW load from a 100 µW harvest is sustainable through a 90 %
        // converter.
        let mut total = Joules(0.0);
        for _ in 0..100 {
            total += c.tick(Seconds(1e-3), Watts(50e-6));
        }
        assert!((total.0 - 5e-6).abs() < 1e-8, "delivered {total}");
        // No real deficit — only round-off dust from the η round trip.
        assert!(
            c.report().deficit.0 < 1e-15,
            "deficit {}",
            c.report().deficit
        );
    }

    #[test]
    fn overload_records_deficit() {
        let mut c = chain_100uw();
        // 1 mW from a 100 µW harvester starting empty must starve.
        let mut delivered = Joules(0.0);
        for _ in 0..100 {
            delivered += c.tick(Seconds(1e-3), Watts(1e-3));
        }
        assert!(c.report().deficit.0 > 0.0);
        assert!(delivered.0 < 100e-6 * 0.1);
    }

    #[test]
    fn clamp_spills_energy() {
        let mut c = chain_100uw();
        for _ in 0..2_000 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        assert!(c.report().spilled.0 > 0.0, "reservoir never clamped");
        let e_max = c.storage().capacitance().stored_energy(Volts(1.2));
        assert!((c.storage().stored_energy().0 - e_max.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_loss_is_positive_under_load() {
        let mut c = chain_100uw();
        for _ in 0..50 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        for _ in 0..50 {
            c.tick(Seconds(1e-3), Watts(30e-6));
        }
        let r = c.report();
        assert!(r.conversion_loss.0 > 0.0);
        let eff = r.end_to_end_efficiency();
        assert!(eff > 0.0 && eff < 1.0, "eff {eff}");
        // Books balance: harvested = spilled + stored + delivered + loss
        // + (deficit is unmet demand, not energy).
        let stored = c.storage().stored_energy();
        let balance = r.spilled.0 + stored.0 + r.delivered.0 + r.conversion_loss.0;
        assert!(
            (r.harvested.0 - balance).abs() < r.harvested.0 * 1e-6,
            "harvested {} vs accounted {balance}",
            r.harvested
        );
    }

    #[test]
    fn draw_quantum_is_all_or_nothing() {
        let mut c = chain_100uw();
        // Empty reservoir: every draw refused, demand booked as deficit.
        assert!(!c.draw_quantum(Joules(1e-6), Seconds(1e-3)));
        assert!((c.report().deficit.0 - 1e-6).abs() < 1e-18);
        assert_eq!(c.report().delivered.0, 0.0);
        // Charge up, then a small quantum must be granted in full.
        for _ in 0..100 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        let stored_before = c.storage().stored_energy();
        assert!(c.draw_quantum(Joules(1e-6), Seconds(1e-3)));
        assert!(c.report().delivered.0 >= 1e-6 * 0.99);
        // The withdrawal covers the delivery plus conversion loss.
        let spent = stored_before.0 - c.storage().stored_energy().0;
        assert!(spent > 1e-6, "withdrew {spent}");
        // A quantum bigger than the whole reservoir is refused and the
        // reservoir is left untouched (all-or-nothing).
        let stored = c.storage().stored_energy();
        let deficit_before = c.report().deficit;
        assert!(!c.draw_quantum(Joules(1.0), Seconds(1e-3)));
        assert_eq!(c.storage().stored_energy(), stored);
        assert!((c.report().deficit.0 - deficit_before.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn draw_quantum_zero_energy_quantum() {
        // On an empty reservoir a zero quantum is refused (the
        // converter's quiescent draw still needs banking) and books a
        // zero deficit — the report stays exactly as it was.
        let mut c = chain_100uw();
        assert!(!c.draw_quantum(Joules(0.0), Seconds(1e-3)));
        assert_eq!(c.report().deficit, Joules(0.0));
        assert_eq!(c.report().delivered, Joules(0.0));

        // Charged: the zero quantum is granted, delivers nothing, and
        // the reservoir pays only the quiescent slice (all of it booked
        // as conversion loss).
        for _ in 0..100 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        let stored_before = c.storage().stored_energy();
        let loss_before = c.report().conversion_loss;
        assert!(c.draw_quantum(Joules(0.0), Seconds(1e-3)));
        assert_eq!(c.report().delivered, Joules(0.0));
        let spent = stored_before.0 - c.storage().stored_energy().0;
        let loss = c.report().conversion_loss.0 - loss_before.0;
        assert!(
            (spent - loss).abs() < 1e-18,
            "quiescent slice {spent} must all be conversion loss, got {loss}"
        );
    }

    #[test]
    fn draw_quantum_exceeding_capacity_refused_even_when_full() {
        let mut c = chain_100uw();
        // Charge until the reservoir caps out (harvest starts spilling).
        for _ in 0..10_000 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        assert!(c.report().spilled.0 > 0.0, "reservoir should be full");
        let stored = c.storage().stored_energy();
        // A demand above everything the full reservoir holds can never
        // be granted, and the refusal must not touch the store.
        assert!(!c.draw_quantum(Joules(stored.0 * 1.01), Seconds(1e-3)));
        assert_eq!(c.storage().stored_energy(), stored);
    }

    #[test]
    fn repeated_refusals_accumulate_deficit() {
        let mut c = chain_100uw();
        let demand = Joules(3e-7);
        for i in 1..=5 {
            assert!(!c.draw_quantum(demand, Seconds(1e-3)));
            assert!(
                (c.report().deficit.0 - demand.0 * i as f64).abs() < 1e-18,
                "after {i} refusals deficit {} != {i}×{demand}",
                c.report().deficit
            );
        }
        assert_eq!(c.report().delivered, Joules(0.0));
        assert_eq!(c.storage().stored_energy(), Joules(0.0));
    }

    #[test]
    fn draw_quantum_ledger_invariant_under_random_interleaving() {
        use emc_prng::{Rng, StdRng};
        // Property: whatever order ticks, grants and refusals happen
        // in, the ledger balances — everything harvested is spilled,
        // still stored, delivered or lost in conversion; and the
        // deficit equals exactly the demand of the refused quanta.
        let mut c = chain_100uw();
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let mut refused = 0.0f64;
        for _ in 0..500 {
            if rng.gen_bool(0.5) {
                c.tick(Seconds(1e-3), Watts(0.0));
            } else {
                let demand = Joules(rng.gen_range(0.0..2e-6));
                if !c.draw_quantum(demand, Seconds(1e-3)) {
                    refused += demand.0;
                }
            }
        }
        let r = c.report();
        assert!(r.harvested.0 > 0.0 && r.delivered.0 > 0.0 && r.deficit.0 > 0.0);
        let accounted =
            r.spilled.0 + c.storage().stored_energy().0 + r.delivered.0 + r.conversion_loss.0;
        assert!(
            (r.harvested.0 - accounted).abs() < r.harvested.0 * 1e-9,
            "harvested {} vs accounted {accounted}",
            r.harvested
        );
        assert!(
            (r.deficit.0 - refused).abs() < 1e-15,
            "deficit {} vs refused demand {refused}",
            r.deficit
        );
    }

    #[test]
    fn draw_quantum_books_conversion_loss() {
        let mut c = chain_100uw();
        for _ in 0..100 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        let loss_before = c.report().conversion_loss;
        assert!(c.draw_quantum(Joules(2e-6), Seconds(1e-3)));
        assert!(c.report().conversion_loss > loss_before);
    }

    #[test]
    fn report_efficiency_zero_when_nothing_harvested() {
        assert_eq!(ChainReport::default().end_to_end_efficiency(), 0.0);
    }

    #[test]
    fn telemetry_mirrors_the_report() {
        let mut c = chain_100uw();
        for _ in 0..50 {
            c.tick(Seconds(1e-3), Watts(0.0));
        }
        for _ in 0..50 {
            c.tick(Seconds(1e-3), Watts(30e-6));
        }
        let t = c.telemetry();
        let r = c.report();
        assert_eq!(
            t.energy.get("chain/harvested", EnergyKind::Harvested),
            Some(r.harvested.0)
        );
        assert_eq!(
            t.energy.get("chain/delivered", EnergyKind::Dissipated),
            Some(r.delivered.0)
        );
        assert_eq!(
            t.energy.get("chain/conversion", EnergyKind::Leaked),
            Some(r.conversion_loss.0)
        );
        assert_eq!(
            t.energy.get("chain/reservoir", EnergyKind::Stored),
            Some(c.storage().stored_energy().0)
        );
        assert_eq!(
            t.metrics.gauge_value("chain.efficiency"),
            Some(r.end_to_end_efficiency())
        );
        assert_eq!(
            t.metrics.gauge_value("chain.reservoir.voltage_v"),
            Some(c.storage().voltage().0)
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_dt_panics() {
        let mut c = chain_100uw();
        let _ = c.tick(Seconds(0.0), Watts(0.0));
    }
}
