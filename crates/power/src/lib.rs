//! Energy harvesters, storage, DC-DC conversion and power chains.
//!
//! Section II-B of *Energy-modulated computing* contrasts battery supply
//! (stable voltage, ample current) with energy-harvester supply: possibly
//! infinite energy but **small, unstable power** that makes maintaining a
//! stable Vdd expensive. This crate models the supply side of that
//! argument:
//!
//! * [`harvester`] — micro-generator models: a resonant
//!   [`VibrationHarvester`] (power falls off a Lorentzian as the tuning
//!   drifts from resonance — the thing MPPT tracks), a [`SolarCell`] with
//!   an I–V curve and irradiance profile, and a seeded [`BurstSource`]
//!   for sporadic scavenging;
//! * [`storage`] — [`StorageCap`]: the super-capacitor buffer with charge
//!   bookkeeping, voltage clamp and self-discharge;
//! * [`converter`] — [`DcDcConverter`]: a regulated output with a
//!   conversion-ratio-dependent efficiency curve and quiescent draw, the
//!   "significant effort (again costing energy!)" of the paper;
//! * [`mppt`] — [`PerturbObserve`]: the classic maximum-power-point
//!   tracker used on the generation side;
//! * [`chain`] — [`PowerChain`]: harvester → storage → converter composed
//!   into one steppable object with full energy accounting, plus
//!   [`chain::ac_supply`] for the raw AC rail of the paper's Fig. 4;
//! * [`power_clock`] — [`PowerClock`]: the trapezoidal/sinusoidal n-phase
//!   ramped supply of adiabatic logic, with the phase-discipline queries
//!   the `emc-verify` `PC` rules and `emc-altlogic` build on.
//!
//! # Examples
//!
//! ```
//! use emc_power::{PowerChain, StorageCap, DcDcConverter, VibrationHarvester};
//! use emc_units::{Farads, Hertz, Seconds, Volts, Watts};
//!
//! let harvester = VibrationHarvester::new(Hertz(120.0), Watts(100e-6), 8.0);
//! let storage = StorageCap::new(Farads(10e-6), Volts(0.0), Volts(1.2));
//! let dcdc = DcDcConverter::new(Volts(0.5));
//! let mut chain = PowerChain::new(harvester.into_source(Hertz(120.0)), storage, dcdc);
//! // One millisecond of harvesting with no load charges the reservoir.
//! chain.tick(Seconds(1e-3), Watts(0.0));
//! assert!(chain.storage().voltage() > Volts(0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod chain;
pub mod converter;
pub mod harvester;
pub mod mppt;
pub mod power_clock;
pub mod storage;

pub use battery::Battery;
pub use chain::{ChainReport, PowerChain};
pub use converter::DcDcConverter;
pub use harvester::{BurstSource, HarvestSource, SolarCell, VibrationHarvester};
pub use mppt::PerturbObserve;
pub use power_clock::{ClockShape, PhasePos, PowerClock};
pub use storage::StorageCap;
