//! Fleet determinism pins: bit-identical digests, reports and merged
//! per-node ledgers at 1, 2 and 8 worker threads, plus the merge
//! associativity property the sharded aggregation relies on.

use emc_fleet::{run_fleet, CalibDepth, DroughtSpec, FleetConfig, NodeLedger, TopologyKind};
use emc_prng::{Rng, SplitMix64, StdRng};

fn smoke_config(nodes: u32, epochs: u64, seed: u64) -> FleetConfig {
    FleetConfig {
        calib: CalibDepth::Smoke,
        ..FleetConfig::new(nodes, epochs, seed)
    }
}

/// The tentpole invariant: digests, JSON bytes, merged counters and the
/// merged femtojoule ledger must not depend on the worker thread count.
#[test]
fn fleet_is_bit_identical_at_1_2_8_threads() {
    for topology in [
        TopologyKind::Ring,
        TopologyKind::Grid,
        TopologyKind::Clustered,
    ] {
        let mut config = smoke_config(600, 5, 2011);
        config.topology = topology;
        let reference = run_fleet(&config, 1);
        assert!(reference.summary.completed > 0, "fleet did no work");
        for threads in [2usize, 8] {
            let report = run_fleet(&config, threads);
            assert_eq!(
                reference.digest,
                report.digest,
                "digest diverged at {threads} threads on {}",
                topology.name()
            );
            assert_eq!(reference.to_json(), report.to_json());
            assert_eq!(reference.summary, report.summary);
            assert_eq!(reference.ledger, report.ledger);
        }
    }
}

/// The merged per-node ledgers, rendered through `emc-obs`, export the
/// same bytes at every thread count.
#[test]
fn merged_ledgers_export_identically_across_threads() {
    let config = smoke_config(300, 4, 7);
    let reference = run_fleet(&config, 1).telemetry();
    let ref_jsonl = emc_obs::export::to_jsonl(&reference);
    assert!(ref_jsonl.contains("fleet/harvested"));
    for threads in [2usize, 8] {
        let t = run_fleet(&config, threads).telemetry();
        assert_eq!(ref_jsonl, emc_obs::export::to_jsonl(&t));
    }
}

/// Different seeds must change the digest (the pin is not vacuous).
#[test]
fn seed_changes_the_digest() {
    let a = run_fleet(&smoke_config(120, 3, 1), 1);
    let b = run_fleet(&smoke_config(120, 3, 2), 1);
    assert_ne!(a.digest, b.digest);
}

/// A drought run is deterministic too, and differs from the healthy
/// run.
#[test]
fn drought_runs_are_deterministic() {
    let mut config = smoke_config(150, 8, 42);
    config.drought = Some(DroughtSpec {
        from_epoch: 2,
        until_epoch: 8,
        factor: 0.1,
    });
    let a = run_fleet(&config, 1);
    let b = run_fleet(&config, 8);
    assert_eq!(a.digest, b.digest);
    let healthy = run_fleet(&smoke_config(150, 8, 42), 1);
    assert_ne!(a.digest, healthy.digest);
}

/// Associativity property test for the node-ledger merge: the integer
/// femtojoule buckets make `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` *exact* —
/// the property that lets the engine merge shard results in any
/// grouping. (An f64 ledger would fail this bit-for-bit.)
#[test]
fn node_ledger_merge_is_associative_and_commutative() {
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let random_ledger = |rng: &mut StdRng| NodeLedger {
        harvested_fj: rng.gen_range(0..u64::MAX / 8),
        spilled_fj: rng.gen_range(0..1u64 << 40),
        sense_fj: rng.gen_range(0..1u64 << 40),
        compute_fj: rng.gen_range(0..1u64 << 40),
        radio_fj: rng.gen_range(0..1u64 << 40),
        idle_fj: rng.gen_range(0..1u64 << 40),
        loss_fj: rng.gen_range(0..1u64 << 40),
        deficit_fj: rng.gen_range(0..1u64 << 40),
        stored_fj: rng.gen_range(0..1u64 << 40),
    };
    for _ in 0..200 {
        let a = random_ledger(&mut rng);
        let b = random_ledger(&mut rng);
        let c = random_ledger(&mut rng);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
    }
    // Identity element.
    let a = random_ledger(&mut rng);
    assert_eq!(a.merge(&NodeLedger::default()), a);
}

/// Any shard grouping of per-node ledgers merges to the same total —
/// the statement the engine actually depends on, checked directly.
#[test]
fn ledger_merge_is_grouping_invariant() {
    let mut rng = StdRng::seed_from_u64(SplitMix64::mix(99, 1));
    let ledgers: Vec<NodeLedger> = (0..64)
        .map(|_| NodeLedger {
            harvested_fj: rng.gen_range(0..1u64 << 50),
            compute_fj: rng.gen_range(0..1u64 << 50),
            ..Default::default()
        })
        .collect();
    let flat = ledgers
        .iter()
        .fold(NodeLedger::default(), |acc, l| acc.merge(l));
    for chunk in [3usize, 7, 16, 64] {
        let grouped = ledgers
            .chunks(chunk)
            .map(|c| c.iter().fold(NodeLedger::default(), |acc, l| acc.merge(l)))
            .fold(NodeLedger::default(), |acc, l| acc.merge(&l));
        assert_eq!(flat, grouped, "grouping by {chunk} changed the merge");
    }
}
