//! # emc-fleet — deterministic fleet-scale node simulation
//!
//! The paper's headline scenario is not one circuit on one supply but
//! *populations* of energy-harvesting devices whose computation is
//! modulated by whatever power the environment delivers. This crate
//! scales the reproduction from "replay Fig. 7" to thousands-to-
//! millions of communicating sensor nodes:
//!
//! * each [`node::NodeState`] bundles a real [`emc_power::PowerChain`]
//!   (seed-jittered vibration or solar harvester → storage cap →
//!   DC-DC), the calibrated charge-to-digital sensor front-end, and an
//!   abstracted self-timed logic island whose throughput and
//!   energy-per-op curves are **calibrated from gate-level `emc-sim`
//!   runs** of the builtin counting rig ([`island::IslandModel`]) — so
//!   fleets never step netlists in the hot loop;
//! * nodes exchange messages over a [`topology::Topology`] with
//!   per-link latencies of one-to-four epochs, through shard-local
//!   [`event::EventQueue`]s (events ordered by `(time, node, seq)`,
//!   execution yields successor events — the `akshayknarayan/simulator`
//!   event/node/topology split);
//! * tasks run under the **energy-token discipline**
//!   ([`emc_power::PowerChain::draw_quantum`]): the whole quantum is
//!   banked up front or the task does not start, and the
//!   **game-theoretic power manager** ([`emc_core::PowerGame`]) turns
//!   each epoch's measured harvest into per-class duty quotas;
//! * the engine shards nodes across the [`emc_sim::campaign`] worker
//!   pool with splitmix-derived per-node seeds, an epoch barrier whose
//!   lookahead is the minimum link latency, and exact-integer
//!   femtojoule ledgers ([`node::NodeLedger`], associative merge) — so
//!   fleet digests and JSON reports are **bit-identical at any worker
//!   thread count**.
//!
//! ```
//! use emc_fleet::{run_fleet, CalibDepth, FleetConfig};
//!
//! let config = FleetConfig {
//!     calib: CalibDepth::Smoke,
//!     ..FleetConfig::new(96, 4, 2011)
//! };
//! let a = run_fleet(&config, 1);
//! let b = run_fleet(&config, 2);
//! assert_eq!(a.digest, b.digest);
//! assert_eq!(a.to_json(), b.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod island;
pub mod node;
pub mod topology;

pub use engine::{
    run_fleet, shard_count, ClassReport, DroughtSpec, EpochRow, FleetConfig, FleetReport,
};
pub use event::{EventKind, EventQueue, FleetEvent, Message, Nanos};
pub use island::{CalibDepth, IslandModel, IslandPoint, SensorModel, SensorPoint};
pub use node::{NodeClass, NodeLedger, NodeState, NodeSummary, TaskOutcome, CLASSES};
pub use topology::{Link, Topology, TopologyKind, CLUSTER_SIZE};
