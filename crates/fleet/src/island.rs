//! The calibrated SI logic island and sensor front-end.
//!
//! A million-node fleet cannot step gate-level netlists, so each node
//! carries an *abstracted* island instead: throughput (ops/s) and
//! energy-per-op curves over rail voltage, **calibrated once per fleet**
//! by actually running `emc-sim` on the repository's builtin counting
//! rig (a [`emc_async::SelfTimedOscillator`] driving an 8-bit
//! [`emc_async::ToggleRippleCounter`] — the same circuit `emc-perf`
//! measures) at a grid of supply points. Between grid points the island
//! interpolates piecewise-linearly; below the lowest firing grid point
//! the island stalls (rate 0), which is exactly the self-timed story:
//! computation slows with the rail and stops, it never wrongs.
//!
//! The sensor front-end is calibrated the same way from the gate-level
//! [`emc_sensors::ChargeToDigitalConverter`]: a handful of real
//! conversions pin the code/energy/duration curves that fleet nodes
//! then interpolate.

use emc_async::{SelfTimedOscillator, ToggleRippleCounter};
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sensors::ChargeToDigitalConverter;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Farads, Volts, Waveform};

/// How much gate-level work to spend on calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibDepth {
    /// Dense Vdd grid, more events per point — for real fleet runs.
    Full,
    /// Sparse grid and tiny event budgets — for `--smoke` and tests.
    Smoke,
}

/// One calibrated supply point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandPoint {
    /// Rail voltage of the measurement.
    pub vdd: f64,
    /// Gate firings per simulated second at this rail.
    pub ops_per_sec: f64,
    /// Supply energy drawn per gate firing, joules.
    pub joules_per_op: f64,
}

/// Piecewise-linear throughput/energy model of a self-timed island.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandModel {
    points: Vec<IslandPoint>,
}

impl IslandModel {
    /// Calibrates the island from gate-level runs of the counting rig.
    ///
    /// Every grid voltage is simulated to `events` fired events (or
    /// quiescence); points where the rig fails to fire are recorded as
    /// stalled. Deterministic: the rig, the device model and the event
    /// budget fully determine the curves.
    pub fn calibrate(depth: CalibDepth) -> Self {
        let (grid, events): (&[f64], u64) = match depth {
            CalibDepth::Full => (
                &[
                    0.16, 0.18, 0.20, 0.24, 0.28, 0.32, 0.36, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80,
                    0.90, 1.00,
                ],
                3_000,
            ),
            CalibDepth::Smoke => (&[0.20, 0.30, 0.50, 0.80, 1.00], 400),
        };
        let points = grid
            .iter()
            .map(|&vdd| calibrate_point(vdd, events))
            .collect();
        Self { points }
    }

    /// Builds a model directly from points (tests, ablations).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not sorted by voltage.
    pub fn from_points(points: Vec<IslandPoint>) -> Self {
        assert!(!points.is_empty(), "island model needs points");
        assert!(
            points.windows(2).all(|w| w[0].vdd < w[1].vdd),
            "island points must be sorted by vdd"
        );
        Self { points }
    }

    /// The calibration grid.
    pub fn points(&self) -> &[IslandPoint] {
        &self.points
    }

    /// Interpolated firing rate at `vdd` (ops per simulated second).
    /// Zero below the lowest live grid point — the island stalls.
    pub fn ops_per_sec(&self, vdd: f64) -> f64 {
        self.interp(vdd, |p| p.ops_per_sec)
    }

    /// Interpolated energy per op at `vdd`, joules.
    pub fn joules_per_op(&self, vdd: f64) -> f64 {
        self.interp(vdd, |p| p.joules_per_op)
    }

    fn interp(&self, vdd: f64, f: impl Fn(&IslandPoint) -> f64) -> f64 {
        let pts = &self.points;
        if vdd <= pts[0].vdd {
            // Below the calibrated range: stalled unless the lowest
            // point itself is live and we are exactly on it.
            return if vdd == pts[0].vdd { f(&pts[0]) } else { 0.0 };
        }
        if vdd >= pts[pts.len() - 1].vdd {
            return f(&pts[pts.len() - 1]);
        }
        let hi = pts.partition_point(|p| p.vdd < vdd);
        let (a, b) = (&pts[hi - 1], &pts[hi]);
        let t = (vdd - a.vdd) / (b.vdd - a.vdd);
        f(a) + t * (f(b) - f(a))
    }
}

/// Runs the counting rig at a constant `vdd` and measures its firing
/// rate and per-op energy.
fn calibrate_point(vdd: f64, events: u64) -> IslandPoint {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let _cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
    sim.assign_all(d);
    osc.prime(&mut sim);
    sim.start();
    let fired = sim.run_to_quiescence(events);
    let elapsed = sim.now().0;
    if fired == 0 || elapsed <= 0.0 {
        return IslandPoint {
            vdd,
            ops_per_sec: 0.0,
            joules_per_op: 0.0,
        };
    }
    let energy = sim.energy_drawn(d).0;
    IslandPoint {
        vdd,
        ops_per_sec: fired as f64 / elapsed,
        joules_per_op: energy / fired as f64,
    }
}

/// One calibrated sensor operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorPoint {
    /// Sampled input voltage.
    pub v_in: f64,
    /// Digital code produced.
    pub code: u64,
    /// Energy spent by the conversion, joules.
    pub energy: f64,
    /// Conversion duration, seconds.
    pub duration: f64,
}

/// Piecewise-linear model of the charge-to-digital front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorModel {
    points: Vec<SensorPoint>,
}

impl SensorModel {
    /// Calibrates from real gate-level conversions across the node's
    /// sensing range.
    pub fn calibrate(depth: CalibDepth) -> Self {
        let (bits, samples) = match depth {
            CalibDepth::Full => (8, 7),
            CalibDepth::Smoke => (6, 3),
        };
        let adc = ChargeToDigitalConverter::new(Farads(2e-12), bits);
        let points = adc
            .code_curve(Volts(0.30), Volts(1.0), samples)
            .into_iter()
            .map(|(v, r)| SensorPoint {
                v_in: v.0,
                code: r.code,
                energy: r.energy.0,
                duration: r.duration.0,
            })
            .collect();
        Self { points }
    }

    /// The calibration points.
    pub fn points(&self) -> &[SensorPoint] {
        &self.points
    }

    /// Interpolated `(code, energy_j, duration_s)` for a sample at
    /// `v_in` (clamped to the calibrated range).
    pub fn sample(&self, v_in: f64) -> (u64, f64, f64) {
        let pts = &self.points;
        if v_in <= pts[0].v_in {
            let p = &pts[0];
            return (p.code, p.energy, p.duration);
        }
        if v_in >= pts[pts.len() - 1].v_in {
            let p = &pts[pts.len() - 1];
            return (p.code, p.energy, p.duration);
        }
        let hi = pts.partition_point(|p| p.v_in < v_in);
        let (a, b) = (&pts[hi - 1], &pts[hi]);
        let t = (v_in - a.v_in) / (b.v_in - a.v_in);
        let code = a.code as f64 + t * (b.code as f64 - a.code as f64);
        (
            code.round() as u64,
            a.energy + t * (b.energy - a.energy),
            a.duration + t * (b.duration - a.duration),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_calibration_is_monotone_in_rate() {
        let m = IslandModel::calibrate(CalibDepth::Smoke);
        let live: Vec<&IslandPoint> = m.points().iter().filter(|p| p.ops_per_sec > 0.0).collect();
        assert!(live.len() >= 2, "rig never fired during calibration");
        for w in live.windows(2) {
            assert!(
                w[1].ops_per_sec > w[0].ops_per_sec,
                "self-timed rate must grow with vdd"
            );
        }
    }

    #[test]
    fn interpolation_brackets_grid_points() {
        let m = IslandModel::from_points(vec![
            IslandPoint {
                vdd: 0.2,
                ops_per_sec: 0.0,
                joules_per_op: 0.0,
            },
            IslandPoint {
                vdd: 0.4,
                ops_per_sec: 1e6,
                joules_per_op: 1e-12,
            },
            IslandPoint {
                vdd: 0.8,
                ops_per_sec: 5e6,
                joules_per_op: 2e-12,
            },
        ]);
        assert_eq!(m.ops_per_sec(0.1), 0.0); // below range: stalled
        assert_eq!(m.ops_per_sec(0.4), 1e6);
        let mid = m.ops_per_sec(0.6);
        assert!(mid > 1e6 && mid < 5e6);
        assert_eq!(m.ops_per_sec(1.5), 5e6); // clamped above
    }

    #[test]
    fn sensor_calibration_codes_increase_with_voltage() {
        let s = SensorModel::calibrate(CalibDepth::Smoke);
        let first = s.points().first().expect("points");
        let last = s.points().last().expect("points");
        assert!(last.code > first.code);
        let (code, energy, duration) = s.sample(0.65);
        assert!(code >= first.code && code <= last.code);
        assert!(energy > 0.0 && duration > 0.0);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = IslandModel::calibrate(CalibDepth::Smoke);
        let b = IslandModel::calibrate(CalibDepth::Smoke);
        assert_eq!(a, b);
    }
}
