//! A fleet node: power chain + sensor front-end + calibrated island.
//!
//! Each node owns a real [`emc_power::PowerChain`] (vibration harvester
//! or solar cell → storage cap → DC-DC) and executes *tasks* under the
//! energy-token discipline: a task's whole quantum (sense + compute +
//! radio) is banked from the reservoir through
//! [`emc_power::PowerChain::draw_quantum`] before any of it runs —
//! all-or-nothing, no half-finished work on a dying rail. What it may
//! attempt per wake is capped by the fleet-level duty quota the
//! game-theoretic power manager assigns to its QoS class.
//!
//! All node energy accounting is kept in a [`NodeLedger`] of integer
//! femtojoules, so ledger merging is *exactly* associative and
//! commutative — f64 accumulation would make the merged fleet ledger
//! depend on merge grouping, which the deterministic sharding forbids.

use emc_power::{DcDcConverter, PowerChain, SolarCell, StorageCap, VibrationHarvester};
use emc_prng::{Rng, SplitMix64, StdRng};
use emc_units::{Farads, Hertz, Joules, Seconds, Volts, Watts, Waveform};

use crate::event::Nanos;
use crate::island::{IslandModel, SensorModel};

/// Joules → integer femtojoules (saturating, never negative).
pub fn to_femtojoules(j: f64) -> u64 {
    if j <= 0.0 {
        0
    } else {
        (j * 1e15).round().min(u64::MAX as f64) as u64
    }
}

/// Integer femtojoules → joules.
pub fn from_femtojoules(fj: u64) -> f64 {
    fj as f64 * 1e-15
}

/// Per-node energy ledger in integer femtojoules. Integer buckets make
/// [`NodeLedger::merge`] exactly associative *and* commutative — the
/// property the fleet's sharded merge (and its property test) relies
/// on; see `emc_obs::EnergyLedger` for the exported float view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLedger {
    /// Energy produced by the harvester.
    pub harvested_fj: u64,
    /// Harvested energy the reservoir could not accept (clamp).
    pub spilled_fj: u64,
    /// Energy delivered into sensor conversions.
    pub sense_fj: u64,
    /// Energy delivered into island compute.
    pub compute_fj: u64,
    /// Energy delivered into the radio (tx + rx).
    pub radio_fj: u64,
    /// Idle / standing draw delivered outside task quanta.
    pub idle_fj: u64,
    /// Conversion loss (inefficiency + quiescent).
    pub loss_fj: u64,
    /// Demand the reservoir could not meet (refused quanta).
    pub deficit_fj: u64,
    /// Energy still stored in the reservoir at the end of the run.
    pub stored_fj: u64,
}

impl NodeLedger {
    /// Exact bucket-wise sum (saturating).
    pub fn merge(&self, other: &NodeLedger) -> NodeLedger {
        NodeLedger {
            harvested_fj: self.harvested_fj.saturating_add(other.harvested_fj),
            spilled_fj: self.spilled_fj.saturating_add(other.spilled_fj),
            sense_fj: self.sense_fj.saturating_add(other.sense_fj),
            compute_fj: self.compute_fj.saturating_add(other.compute_fj),
            radio_fj: self.radio_fj.saturating_add(other.radio_fj),
            idle_fj: self.idle_fj.saturating_add(other.idle_fj),
            loss_fj: self.loss_fj.saturating_add(other.loss_fj),
            deficit_fj: self.deficit_fj.saturating_add(other.deficit_fj),
            stored_fj: self.stored_fj.saturating_add(other.stored_fj),
        }
    }

    /// Renders the integer buckets into an `emc-obs` energy ledger
    /// under `fleet/<bucket>` accounts (fixed booking order → identical
    /// export bytes for identical runs).
    pub fn to_energy_ledger(&self) -> emc_obs::EnergyLedger {
        use emc_obs::EnergyKind;
        let mut l = emc_obs::EnergyLedger::new();
        l.add(
            "fleet/harvested",
            EnergyKind::Harvested,
            from_femtojoules(self.harvested_fj),
        );
        l.add(
            "fleet/spilled",
            EnergyKind::Leaked,
            from_femtojoules(self.spilled_fj),
        );
        l.add(
            "fleet/sense",
            EnergyKind::Dissipated,
            from_femtojoules(self.sense_fj),
        );
        l.add(
            "fleet/compute",
            EnergyKind::Dissipated,
            from_femtojoules(self.compute_fj),
        );
        l.add(
            "fleet/radio",
            EnergyKind::Dissipated,
            from_femtojoules(self.radio_fj),
        );
        l.add(
            "fleet/idle",
            EnergyKind::Dissipated,
            from_femtojoules(self.idle_fj),
        );
        l.add(
            "fleet/conversion",
            EnergyKind::Leaked,
            from_femtojoules(self.loss_fj),
        );
        l.add(
            "fleet/reservoir",
            EnergyKind::Stored,
            from_femtojoules(self.stored_fj),
        );
        l
    }

    /// Fold the ledger into an FNV-1a accumulator (digest building).
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        for v in [
            self.harvested_fj,
            self.spilled_fj,
            self.sense_fj,
            self.compute_fj,
            self.radio_fj,
            self.idle_fj,
            self.loss_fj,
            self.deficit_fj,
            self.stored_fj,
        ] {
            h = fnv_fold(h, v);
        }
        h
    }
}

/// One FNV-1a step over a `u64` (the repo-wide digest primitive).
pub fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// QoS class of a node — its duty period, workload and radio appetite.
/// Nodes are assigned round-robin (`node_id % 3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Fast shallow sampling: wake every epoch, tiny compute.
    Sentinel,
    /// Medium-rate monitoring with moderate compute per task.
    Monitor,
    /// Slow deep aggregation: long period, heavy compute.
    Archiver,
}

/// Number of QoS classes.
pub const CLASSES: usize = 3;

impl NodeClass {
    /// Class of `node_id` (round-robin assignment).
    pub fn of(node_id: u32) -> Self {
        match node_id % 3 {
            0 => NodeClass::Sentinel,
            1 => NodeClass::Monitor,
            _ => NodeClass::Archiver,
        }
    }

    /// Class index (0..[`CLASSES`]).
    pub fn index(&self) -> usize {
        match self {
            NodeClass::Sentinel => 0,
            NodeClass::Monitor => 1,
            NodeClass::Archiver => 2,
        }
    }

    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            NodeClass::Sentinel => "sentinel",
            NodeClass::Monitor => "monitor",
            NodeClass::Archiver => "archiver",
        }
    }

    /// Wake period in epochs.
    pub fn period_epochs(&self) -> u64 {
        match self {
            NodeClass::Sentinel => 1,
            NodeClass::Monitor => 2,
            NodeClass::Archiver => 4,
        }
    }

    /// Island operations per task.
    pub fn ops_per_task(&self) -> u64 {
        match self {
            NodeClass::Sentinel => 64,
            NodeClass::Monitor => 256,
            NodeClass::Archiver => 1024,
        }
    }

    /// Regulated rail the node's converter targets.
    pub fn rail(&self) -> Volts {
        match self {
            NodeClass::Sentinel => Volts(0.4),
            NodeClass::Monitor => Volts(0.5),
            NodeClass::Archiver => Volts(0.7),
        }
    }
}

/// Radio energy per transmitted message (delivered joules). Sized so
/// the radio dominates the task quantum — per-epoch demand is then
/// comparable to per-epoch harvest, which is what makes the fleet
/// *energy-modulated*: duty cycles track harvest, and a drought
/// visibly starves the reservoir within tens of epochs.
pub const TX_J: f64 = 60e-9;
/// Radio energy per received message.
pub const RX_J: f64 = 25e-9;
/// Standing idle draw of the always-on wake timer.
pub const IDLE_W: f64 = 1.5e-6;

/// Counters a node accumulates over a run (all exact integers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeSummary {
    /// Tasks the duty cycle expected (one per wake, plus backlog cap
    /// overflow counts as expected-but-lost).
    pub expected: u64,
    /// Tasks completed under the token discipline.
    pub completed: u64,
    /// Task attempts refused by the reservoir (token not granted).
    pub refused: u64,
    /// Island operations executed.
    pub ops: u64,
    /// Messages transmitted.
    pub sent: u64,
    /// Messages received (rx quantum granted).
    pub received: u64,
    /// Messages dropped at the receiver (rx quantum refused).
    pub dropped: u64,
    /// Wake events processed.
    pub wakes: u64,
}

impl NodeSummary {
    /// Exact element-wise sum.
    pub fn merge(&self, o: &NodeSummary) -> NodeSummary {
        NodeSummary {
            expected: self.expected + o.expected,
            completed: self.completed + o.completed,
            refused: self.refused + o.refused,
            ops: self.ops + o.ops,
            sent: self.sent + o.sent,
            received: self.received + o.received,
            dropped: self.dropped + o.dropped,
            wakes: self.wakes + o.wakes,
        }
    }

    /// Fold the counters into an FNV-1a accumulator.
    pub fn fold_digest(&self, mut h: u64) -> u64 {
        for v in [
            self.expected,
            self.completed,
            self.refused,
            self.ops,
            self.sent,
            self.received,
            self.dropped,
            self.wakes,
        ] {
            h = fnv_fold(h, v);
        }
        h
    }
}

/// Maximum backlog of unserved wakes a node will try to catch up on.
const BACKLOG_CAP: u64 = 16;

/// One harvester-powered sensor node.
#[derive(Debug)]
pub struct NodeState {
    /// Fleet-wide node id.
    pub id: u32,
    /// QoS class.
    pub class: NodeClass,
    /// The real supply chain (harvester → cap → DC-DC).
    pub chain: PowerChain,
    /// Per-node seeded RNG (`SplitMix64::mix(fleet_seed, id)`) — every
    /// random choice this node ever makes is independent of sharding.
    pub rng: StdRng,
    /// Simulation time of the node's last chain tick.
    pub last_tick: Nanos,
    /// Unserved task backlog (capped at [`BACKLOG_CAP`]).
    pub backlog: u64,
    /// Sequence number for outgoing messages.
    pub msg_seq: u32,
    /// Phase of the sensed environment signal, radians.
    pub sense_phase: f64,
    /// Accumulated counters.
    pub summary: NodeSummary,
    /// Accumulated energy ledger (integer femtojoules).
    pub ledger: NodeLedger,
    /// Checksum of sensed codes (folds sensing into the digest).
    pub sense_digest: u64,
}

impl NodeState {
    /// Builds node `id` with a seed-jittered supply chain. Everything
    /// here is a pure function of `(fleet_seed, id)`.
    pub fn new(fleet_seed: u64, id: u32, drought: Option<&Waveform>) -> Self {
        let mut rng = StdRng::seed_from_u64(SplitMix64::mix(fleet_seed, u64::from(id)));
        let class = NodeClass::of(id);

        // Harvester: two in three nodes ride machinery vibration with a
        // per-node detuning; the rest carry a small solar cell. A
        // drought envelope (if any) throttles every harvester alike.
        let peak = Watts(60e-6 + 60e-6 * rng.gen::<f64>());
        let source = if rng.gen_bool(2.0 / 3.0) {
            let resonance = Hertz(120.0);
            let mut h = VibrationHarvester::new(resonance, peak, 8.0);
            if let Some(env) = drought {
                h = h.with_envelope(env.clone());
            }
            let detune = Hertz(resonance.0 * (1.0 + 0.04 * (rng.gen::<f64>() - 0.5)));
            h.into_source(detune)
        } else {
            let mut irradiance = Waveform::constant(0.55 + 0.4 * rng.gen::<f64>());
            if let Some(env) = drought {
                irradiance = irradiance.times(env.clone());
            }
            // i_sc sized so the ~0.7 V operating point yields ≈ 2·peak
            // under full irradiance.
            SolarCell::new(1.0, 3.0 * peak.0)
                .with_irradiance(irradiance)
                .into_source(0.7)
        };

        // Reservoir: 0.68–1.36 µF — a few epochs of task demand, so
        // storage smooths harvest ripple without hiding a drought.
        // Pre-charged to 45–85 % of the 1.2 V clamp so the fleet is
        // not uniformly dead at t = 0.
        let cap = Farads(0.68e-6 * (1.0 + rng.gen::<f64>()));
        let v_max = Volts(1.2);
        let v0 = Volts(v_max.0 * (0.45 + 0.4 * rng.gen::<f64>()));
        let storage = StorageCap::new(cap, v0, v_max);
        let converter = DcDcConverter::new(class.rail());

        let sense_phase = rng.gen::<f64>() * std::f64::consts::TAU;
        Self {
            id,
            class,
            chain: PowerChain::new(source, storage, converter),
            rng,
            last_tick: 0,
            backlog: 0,
            msg_seq: 0,
            sense_phase,
            summary: NodeSummary::default(),
            ledger: NodeLedger::default(),
            sense_digest: FNV_OFFSET,
        }
    }

    /// First wake time: a per-node jitter inside the first period, so
    /// a class's nodes don't all fire on the same nanosecond.
    pub fn initial_wake(&mut self, epoch: Nanos) -> Nanos {
        let period = self.class.period_epochs() * epoch;
        self.rng.gen_range(0..period.max(1))
    }

    /// Advances the power chain to `now`: harvest at the real
    /// (possibly droughted) source power, pay the idle draw, and book
    /// the deltas into the integer ledger.
    pub fn tick_chain(&mut self, now: Nanos) {
        if now <= self.last_tick {
            return;
        }
        let dt = Seconds((now - self.last_tick) as f64 * 1e-9);
        let before = *self.chain.report();
        self.chain.tick(dt, Watts(IDLE_W));
        let after = self.chain.report();
        self.ledger.harvested_fj += to_femtojoules(after.harvested.0 - before.harvested.0);
        self.ledger.spilled_fj += to_femtojoules(after.spilled.0 - before.spilled.0);
        self.ledger.idle_fj += to_femtojoules(after.delivered.0 - before.delivered.0);
        self.ledger.loss_fj += to_femtojoules(after.conversion_loss.0 - before.conversion_loss.0);
        self.last_tick = now;
    }

    /// The environment signal this node is sensing (volts) — a slow
    /// per-node-phased oscillation across the sensor's calibrated
    /// range.
    pub fn sense_voltage(&self, now: Nanos) -> f64 {
        let t = now as f64 * 1e-9;
        0.62 + 0.32 * (std::f64::consts::TAU * 3.0 * t + self.sense_phase).sin()
    }

    /// Attempts one task at time `now`: bank the whole quantum (sense +
    /// compute + tx), then execute. Returns the message to send on
    /// success (`None` when the island is stalled, the token was
    /// refused, or the node has no neighbours).
    #[allow(clippy::too_many_arguments)]
    pub fn attempt_task(
        &mut self,
        now: Nanos,
        island: &IslandModel,
        sensor: &SensorModel,
        links: &[crate::topology::Link],
    ) -> TaskOutcome {
        let rail = self.class.rail().0;
        let rate = island.ops_per_sec(rail);
        if rate <= 0.0 {
            // Rail below the island's calibrated floor: computation has
            // stopped, not failed — the defining self-timed behaviour.
            self.summary.refused += 1;
            return TaskOutcome::Stalled;
        }
        let ops = self.class.ops_per_task();
        let (code, e_sense, t_sense) = sensor.sample(self.sense_voltage(now));
        let e_compute = ops as f64 * island.joules_per_op(rail);
        let will_send = !links.is_empty();
        let e_radio = if will_send { TX_J } else { 0.0 };
        let quantum = e_sense + e_compute + e_radio;
        let window = Seconds((t_sense + ops as f64 / rate).max(1e-9));
        if !self.chain.draw_quantum(Joules(quantum), window) {
            self.ledger.deficit_fj += to_femtojoules(quantum);
            self.summary.refused += 1;
            return TaskOutcome::Refused;
        }
        // Quantum banked: book the split and the loss delta.
        self.ledger.sense_fj += to_femtojoules(e_sense);
        self.ledger.compute_fj += to_femtojoules(e_compute);
        self.ledger.radio_fj += to_femtojoules(e_radio);
        self.summary.completed += 1;
        self.summary.ops += ops;
        self.sense_digest = fnv_fold(self.sense_digest, code);
        if will_send {
            let link = links[self.rng.gen_range(0..links.len())];
            let seq = self.msg_seq;
            self.msg_seq += 1;
            self.summary.sent += 1;
            TaskOutcome::Sent {
                dst: link.dst,
                deliver: now + link.latency,
                seq,
            }
        } else {
            TaskOutcome::Done
        }
    }

    /// Handles a message arrival: the rx quantum is drawn under the
    /// same all-or-nothing discipline; refusal drops the message.
    pub fn receive(&mut self, src: u32, msg_seq: u32) {
        // Fold the arrival into the digest so routing bugs change it.
        self.sense_digest = fnv_fold(self.sense_digest, u64::from(src) << 32 | u64::from(msg_seq));
        if self.chain.draw_quantum(Joules(RX_J), Seconds(1e-6)) {
            self.ledger.radio_fj += to_femtojoules(RX_J);
            self.summary.received += 1;
        } else {
            self.ledger.deficit_fj += to_femtojoules(RX_J);
            self.summary.dropped += 1;
        }
    }

    /// One wake: tick the chain, grow the backlog by the one task this
    /// wake expects, then attempt up to `quota` tasks. Returns messages
    /// to route.
    pub fn wake(
        &mut self,
        now: Nanos,
        quota: u32,
        island: &IslandModel,
        sensor: &SensorModel,
        links: &[crate::topology::Link],
        out: &mut Vec<crate::event::Message>,
    ) {
        self.summary.wakes += 1;
        self.summary.expected += 1;
        self.backlog = (self.backlog + 1).min(BACKLOG_CAP);
        self.tick_chain(now);
        let attempts = u64::from(quota).min(self.backlog);
        for _ in 0..attempts {
            match self.attempt_task(now, island, sensor, links) {
                TaskOutcome::Sent { dst, deliver, seq } => {
                    self.backlog -= 1;
                    out.push(crate::event::Message {
                        deliver,
                        dst,
                        src: self.id,
                        seq,
                    });
                }
                TaskOutcome::Done => {
                    self.backlog -= 1;
                }
                // One refusal ends the wake: the reservoir that just
                // refused this quantum will refuse the next one too.
                TaskOutcome::Refused | TaskOutcome::Stalled => break,
            }
        }
    }

    /// Finalises the ledger at end of run (records remaining stored
    /// energy) and returns the node's digest contribution.
    pub fn finish(&mut self) -> u64 {
        self.ledger.stored_fj = to_femtojoules(self.chain.storage().stored_energy().0);
        let mut h = self.summary.fold_digest(FNV_OFFSET);
        h = self.ledger.fold_digest(h);
        fnv_fold(h, self.sense_digest)
    }
}

/// What a task attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Completed and transmitted to a neighbour.
    Sent {
        /// Destination node.
        dst: u32,
        /// Absolute delivery time.
        deliver: Nanos,
        /// Sender sequence number.
        seq: u32,
    },
    /// Completed without a transmission (isolated node).
    Done,
    /// Reservoir refused the quantum.
    Refused,
    /// Rail below the island's floor.
    Stalled,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::island::{CalibDepth, IslandPoint};

    fn test_island() -> IslandModel {
        IslandModel::from_points(vec![
            IslandPoint {
                vdd: 0.3,
                ops_per_sec: 0.0,
                joules_per_op: 0.0,
            },
            IslandPoint {
                vdd: 0.4,
                ops_per_sec: 2e6,
                joules_per_op: 0.5e-12,
            },
            IslandPoint {
                vdd: 1.0,
                ops_per_sec: 2e7,
                joules_per_op: 2e-12,
            },
        ])
    }

    #[test]
    fn node_construction_is_seed_deterministic() {
        let a = NodeState::new(42, 7, None);
        let b = NodeState::new(42, 7, None);
        assert_eq!(
            a.chain.storage().stored_energy(),
            b.chain.storage().stored_energy()
        );
        assert_eq!(a.sense_phase, b.sense_phase);
        let c = NodeState::new(42, 8, None);
        assert_ne!(a.sense_phase, c.sense_phase);
    }

    #[test]
    fn ledger_merge_is_exact() {
        let a = NodeLedger {
            harvested_fj: 10,
            sense_fj: 3,
            ..Default::default()
        };
        let b = NodeLedger {
            harvested_fj: 5,
            compute_fj: 7,
            ..Default::default()
        };
        let ab = a.merge(&b);
        assert_eq!(ab.harvested_fj, 15);
        assert_eq!(ab.sense_fj, 3);
        assert_eq!(ab.compute_fj, 7);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn wake_executes_tasks_under_token_discipline() {
        let island = test_island();
        let sensor = SensorModel::calibrate(CalibDepth::Smoke);
        let mut node = NodeState::new(1, 0, None);
        let links = [crate::topology::Link {
            dst: 1,
            latency: 2_000_000,
        }];
        let mut out = Vec::new();
        // Pre-charged reservoir: the first wake must complete its task.
        node.wake(1_000_000, 1, &island, &sensor, &links, &mut out);
        assert_eq!(node.summary.completed, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].deliver >= 3_000_000);
        assert!(node.ledger.compute_fj > 0);
        assert!(node.ledger.radio_fj > 0);
    }

    #[test]
    fn stalled_island_refuses_every_task() {
        let island = IslandModel::from_points(vec![IslandPoint {
            vdd: 2.0, // rail far below the only calibrated point
            ops_per_sec: 1e6,
            joules_per_op: 1e-12,
        }]);
        let sensor = SensorModel::calibrate(CalibDepth::Smoke);
        let mut node = NodeState::new(1, 0, None);
        let mut out = Vec::new();
        node.wake(1_000_000, 4, &island, &sensor, &[], &mut out);
        assert_eq!(node.summary.completed, 0);
        assert_eq!(node.summary.refused, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn receive_drops_when_reservoir_is_empty() {
        let mut node = NodeState::new(9, 3, None);
        // Drain the reservoir.
        while node.chain.draw_quantum(Joules(50e-9), Seconds(1e-6)) {}
        node.receive(0, 0);
        // Either received on residual charge or dropped — but the
        // counters must account for exactly one message.
        assert_eq!(node.summary.received + node.summary.dropped, 1);
    }

    #[test]
    fn femtojoule_conversion_round_trips() {
        assert_eq!(to_femtojoules(0.0), 0);
        assert_eq!(to_femtojoules(-1.0), 0);
        let j = 123.456e-9;
        let fj = to_femtojoules(j);
        assert!((from_femtojoules(fj) - j).abs() < 1e-15);
    }
}
