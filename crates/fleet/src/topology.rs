//! Fleet topologies: who can talk to whom, and how slowly.
//!
//! A [`Topology`] is a CSR adjacency structure with a per-link latency
//! in integer nanoseconds. Latencies are splitmix-seeded per *directed
//! edge* and always **at least one epoch** — the conservative-PDES
//! lookahead contract the engine's epoch barrier relies on: a message
//! sent inside epoch `k` can never be deliverable before epoch `k+1`,
//! so shards simulate an epoch completely independently and exchange
//! messages only at the barrier.

use emc_prng::SplitMix64;

use crate::event::Nanos;

/// The supported fleet shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A bidirectional ring: node `i` ↔ `i±1 (mod n)`.
    Ring,
    /// A 2-D grid (width `⌊√n⌋`) with 4-neighbour links; the ragged
    /// tail row simply has fewer neighbours.
    Grid,
    /// Star clusters of 32 nodes around a head, heads chained in a
    /// ring — the classic sensor-fleet aggregation shape.
    Clustered,
}

impl TopologyKind {
    /// Stable lower-case name (used in reports and the CLI).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Ring => "ring",
            TopologyKind::Grid => "grid",
            TopologyKind::Clustered => "clustered",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(TopologyKind::Ring),
            "grid" => Some(TopologyKind::Grid),
            "clustered" => Some(TopologyKind::Clustered),
            _ => None,
        }
    }
}

/// Nodes per cluster head in [`TopologyKind::Clustered`].
pub const CLUSTER_SIZE: u32 = 32;

/// A directed link to a neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Destination node id.
    pub dst: u32,
    /// Propagation latency, a whole multiple of the epoch length in
    /// `[1, 4]` epochs.
    pub latency: Nanos,
}

/// CSR adjacency with per-link latencies. Construction is a pure
/// function of `(kind, nodes, epoch, seed)` — never of thread count.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    offsets: Vec<u32>,
    links: Vec<Link>,
    min_latency: Nanos,
}

impl Topology {
    /// Builds the adjacency for `nodes` nodes. Every link latency is a
    /// splitmix-seeded whole number of epochs in `[1, 4]`, which keeps
    /// the minimum latency ≥ `epoch` (the engine asserts this).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `epoch` is zero.
    pub fn build(kind: TopologyKind, nodes: u32, epoch: Nanos, seed: u64) -> Self {
        assert!(nodes > 0, "a fleet needs at least one node");
        assert!(epoch > 0, "epoch length must be positive");
        let mut offsets = Vec::with_capacity(nodes as usize + 1);
        let mut links = Vec::new();
        offsets.push(0u32);
        for node in 0..nodes {
            for dst in neighbours(kind, node, nodes) {
                // One latency per *directed* edge, derived from the edge
                // identity alone so it is stable under resharding.
                let edge_id = u64::from(node) << 32 | u64::from(dst);
                let epochs = 1 + SplitMix64::mix(seed ^ 0x70b0_10de, edge_id) % 4;
                links.push(Link {
                    dst,
                    latency: epochs * epoch,
                });
            }
            offsets.push(links.len() as u32);
        }
        let min_latency = links.iter().map(|l| l.latency).min().unwrap_or(epoch);
        Self {
            kind,
            offsets,
            links,
            min_latency,
        }
    }

    /// The shape this adjacency was built from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Total number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The outgoing links of `node`.
    pub fn links(&self, node: u32) -> &[Link] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.links[lo..hi]
    }

    /// The smallest link latency — the PDES lookahead. The engine
    /// asserts `min_latency() >= epoch`.
    pub fn min_latency(&self) -> Nanos {
        self.min_latency
    }
}

/// Deterministic neighbour list (ascending construction order).
fn neighbours(kind: TopologyKind, node: u32, nodes: u32) -> Vec<u32> {
    let mut out = Vec::new();
    match kind {
        TopologyKind::Ring => {
            if nodes > 1 {
                out.push((node + nodes - 1) % nodes);
                let fwd = (node + 1) % nodes;
                if fwd != out[0] {
                    out.push(fwd);
                }
            }
        }
        TopologyKind::Grid => {
            let w = (nodes as f64).sqrt().floor().max(1.0) as u32;
            let (r, c) = (node / w, node % w);
            if r > 0 {
                out.push(node - w);
            }
            if c > 0 {
                out.push(node - 1);
            }
            if c + 1 < w && node + 1 < nodes {
                out.push(node + 1);
            }
            if node + w < nodes {
                out.push(node + w);
            }
        }
        TopologyKind::Clustered => {
            let head = node - node % CLUSTER_SIZE;
            if node == head {
                // Heads: their members, then the head ring.
                for m in head + 1..(head + CLUSTER_SIZE).min(nodes) {
                    out.push(m);
                }
                let heads: Vec<u32> = (0..nodes).step_by(CLUSTER_SIZE as usize).collect();
                if heads.len() > 1 {
                    let idx = heads.iter().position(|&h| h == head).expect("own head");
                    let prev = heads[(idx + heads.len() - 1) % heads.len()];
                    out.push(prev);
                    let next = heads[(idx + 1) % heads.len()];
                    if next != prev {
                        out.push(next);
                    }
                }
            } else {
                // Members talk only to their head.
                out.push(head);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_links_are_symmetric_and_latency_bounded() {
        let epoch = 1_000_000;
        let t = Topology::build(TopologyKind::Ring, 64, epoch, 2011);
        assert_eq!(t.nodes(), 64);
        assert!(t.min_latency() >= epoch);
        for n in 0..64u32 {
            let dsts: Vec<u32> = t.links(n).iter().map(|l| l.dst).collect();
            assert_eq!(dsts.len(), 2);
            for l in t.links(n) {
                assert!(l.latency >= epoch && l.latency <= 4 * epoch);
                assert!(t.links(l.dst).iter().any(|b| b.dst == n), "asymmetric link");
            }
        }
    }

    #[test]
    fn grid_interior_has_four_neighbours() {
        let t = Topology::build(TopologyKind::Grid, 25, 1_000, 1);
        // Node 12 is the centre of the 5×5 grid.
        let dsts: Vec<u32> = t.links(12).iter().map(|l| l.dst).collect();
        assert_eq!(dsts, vec![7, 11, 13, 17]);
    }

    #[test]
    fn clustered_members_reach_only_their_head() {
        let t = Topology::build(TopologyKind::Clustered, 100, 1_000, 7);
        let member = t.links(33);
        assert_eq!(member.len(), 1);
        assert_eq!(member[0].dst, 32);
        // Head 32 sees its members plus the head ring.
        let head_dsts: Vec<u32> = t.links(32).iter().map(|l| l.dst).collect();
        assert!(head_dsts.contains(&33));
        assert!(head_dsts.contains(&0) && head_dsts.contains(&64));
    }

    #[test]
    fn latencies_do_not_depend_on_build_order() {
        let a = Topology::build(TopologyKind::Ring, 16, 500, 9);
        let b = Topology::build(TopologyKind::Ring, 16, 500, 9);
        for n in 0..16u32 {
            assert_eq!(a.links(n), b.links(n));
        }
    }

    #[test]
    fn single_node_fleet_has_no_links() {
        let t = Topology::build(TopologyKind::Ring, 1, 1_000, 3);
        assert_eq!(t.link_count(), 0);
        assert_eq!(t.min_latency(), 1_000);
    }
}
