//! The fleet event queue: totally ordered, deterministic, shard-local.
//!
//! Modeled on the `event.rs` split of the `akshayknarayan/simulator`
//! exemplar (SNIPPETS.md): events carry a time, the executor pops them
//! in time order, and executing an event yields successor events. Two
//! departures keep the fleet bit-deterministic at any thread count:
//!
//! * the queue key is the full triple `(time, node, seq)` — never just
//!   the time — so same-instant events pop in one canonical order;
//! * queues are *shard-local*. Cross-node messages never enter another
//!   shard's queue directly; they go to an outbox and are routed by the
//!   single-threaded epoch barrier (see [`crate::engine`]).
//!
//! Storage is the shared [`CalendarQueue`] from `emc-sim` (amortized
//! O(1) hold operations on the heavily-recurring wake timers) rather
//! than a binary heap; ordering is identical because the calendar
//! always falls back to the event's full `Ord`.

use emc_sim::{CalendarEntry, CalendarQueue};

/// Fleet simulation time in integer nanoseconds. Integer time makes
/// event ordering exact — no float-comparison ties to break.
pub type Nanos = u64;

/// What a popped event asks a node to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The node's duty-cycle timer fired: harvest, then attempt tasks.
    Wake,
    /// A message from `src` arrives at the node.
    Deliver {
        /// Originating node id.
        src: u32,
        /// Sender's per-message sequence number (for total ordering).
        msg_seq: u32,
    },
}

/// One scheduled event, keyed for total ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Absolute firing time.
    pub time: Nanos,
    /// Destination node id.
    pub node: u32,
    /// Shard-local insertion sequence — the final tiebreak, assigned in
    /// deterministic insertion order by [`EventQueue::push`].
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for FleetEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.node, self.seq, order_rank(&self.kind)).cmp(&(
            other.time,
            other.node,
            other.seq,
            order_rank(&other.kind),
        ))
    }
}

impl PartialOrd for FleetEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Wakes before deliveries at the same `(time, node, seq)` — unreachable
/// in practice (`seq` is unique per queue) but keeps `Ord` total.
fn order_rank(kind: &EventKind) -> u32 {
    match kind {
        EventKind::Wake => 0,
        EventKind::Deliver { src, msg_seq } => 1 + src.wrapping_mul(2).wrapping_add(*msg_seq),
    }
}

impl CalendarEntry for FleetEvent {
    fn sort_time(&self) -> f64 {
        // u64 → f64 loses low bits past 2^53 but stays monotone, which
        // is all bucketing needs — exact order still comes from `Ord`.
        self.time as f64
    }
}

/// A min-queue of [`FleetEvent`]s with deterministic pop order.
#[derive(Debug, Default)]
pub struct EventQueue {
    queue: CalendarQueue<FleetEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `node` for absolute time `time`. The
    /// insertion sequence number is assigned here, so callers get a
    /// deterministic queue exactly when their insertion order is
    /// deterministic.
    pub fn push(&mut self, time: Nanos, node: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(FleetEvent {
            time,
            node,
            seq,
            kind,
        });
    }

    /// Pops the next event strictly before `horizon`, or `None` when the
    /// earliest event (if any) is at or past it. Events at or beyond the
    /// horizon stay queued for a later epoch.
    pub fn pop_before(&mut self, horizon: Nanos) -> Option<FleetEvent> {
        match self.queue.peek() {
            Some(ev) if ev.time < horizon => self.queue.pop(),
            _ => None,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued [`EventKind::Deliver`] events — messages routed
    /// to this queue but not yet delivered (message-conservation
    /// accounting at end of run).
    pub fn pending_deliveries(&self) -> u64 {
        self.queue
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count() as u64
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A cross-node message in flight. Ordering (for barrier routing) is by
/// `(deliver, dst, src, seq)` — a total order independent of which shard
/// produced the message first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Message {
    /// Absolute delivery time (send time + link latency).
    pub deliver: Nanos,
    /// Destination node id.
    pub dst: u32,
    /// Source node id.
    pub src: u32,
    /// Sender-assigned sequence number, unique per source node.
    pub seq: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_node_seq_order() {
        let mut q = EventQueue::new();
        q.push(50, 7, EventKind::Wake);
        q.push(10, 9, EventKind::Wake);
        q.push(10, 3, EventKind::Wake);
        q.push(10, 3, EventKind::Deliver { src: 1, msg_seq: 0 });
        let order: Vec<(Nanos, u32, u64)> = std::iter::from_fn(|| q.pop_before(Nanos::MAX))
            .map(|e| (e.time, e.node, e.seq))
            .collect();
        // Same time → lower node id first; same node → insertion order.
        assert_eq!(order, vec![(10, 3, 2), (10, 3, 3), (10, 9, 1), (50, 7, 0)]);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut q = EventQueue::new();
        q.push(100, 0, EventKind::Wake);
        assert!(q.pop_before(100).is_none());
        assert!(q.pop_before(101).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn message_order_is_by_deliver_dst_src_seq() {
        let mut msgs = vec![
            Message {
                deliver: 5,
                dst: 2,
                src: 9,
                seq: 0,
            },
            Message {
                deliver: 5,
                dst: 1,
                src: 0,
                seq: 3,
            },
            Message {
                deliver: 4,
                dst: 9,
                src: 9,
                seq: 9,
            },
        ];
        msgs.sort();
        assert_eq!(msgs[0].deliver, 4);
        assert_eq!((msgs[1].dst, msgs[2].dst), (1, 2));
    }
}
