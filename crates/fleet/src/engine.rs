//! The fleet engine: epoch-barriered conservative PDES over the
//! campaign worker pool.
//!
//! # Determinism architecture
//!
//! The fleet is split into **shards** of contiguous node ranges; the
//! shard count is a pure function of the node count — never of the
//! thread count. Within one *epoch* every shard simulates its own
//! event queue completely independently: the topology guarantees every
//! link latency is at least one epoch (the PDES lookahead), so no
//! message sent during epoch `k` can be deliverable before epoch
//! `k+1`. Shards are fanned out across [`emc_sim::campaign`]'s worker
//! pool (splitmix-seeded, submission-order merged), and between epochs
//! a single-threaded barrier
//!
//! 1. drains every shard's outbox *in shard order*,
//! 2. sorts all in-flight messages by `(deliver, dst, src, seq)` — a
//!    total order independent of which worker produced them first,
//! 3. routes them into the destination shards' inboxes, and
//! 4. runs the fleet-wide duty arbitration for the next epoch: the
//!    game-theoretic power manager ([`emc_core::PowerGame`]) turns the
//!    epoch's measured harvest power into per-class duty quotas.
//!
//! Every number crossing the barrier is an exact integer (femtojoule
//! ledgers, event counters), so the arbitration input — and hence the
//! whole run — is bit-identical at any worker-thread count.

use std::sync::Mutex;
use std::time::Instant;

use emc_core::{PowerGame, TaskBid};
use emc_obs::Telemetry;
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};
use emc_units::{Seconds, Waveform};

use crate::event::{EventKind, EventQueue, Message, Nanos};
use crate::island::{CalibDepth, IslandModel, SensorModel};
use crate::node::{
    fnv_fold, from_femtojoules, NodeClass, NodeLedger, NodeState, NodeSummary, CLASSES, FNV_OFFSET,
};
use crate::topology::{Topology, TopologyKind};

/// A harvest drought: every harvester in the fleet is throttled to
/// `factor` of its envelope between two epochs (the EXPERIMENTS.md
/// sweep drives this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroughtSpec {
    /// First epoch of the drought.
    pub from_epoch: u64,
    /// First epoch after the drought.
    pub until_epoch: u64,
    /// Envelope multiplier during the drought, in `[0, 1]`.
    pub factor: f64,
}

/// Fleet run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Number of epochs to simulate.
    pub epochs: u64,
    /// Epoch length in nanoseconds (also the minimum link latency).
    pub epoch: Nanos,
    /// Master seed; per-node seeds are `SplitMix64::mix(seed, id)`.
    pub seed: u64,
    /// Fleet shape.
    pub topology: TopologyKind,
    /// Calibration depth for the island/sensor models.
    pub calib: CalibDepth,
    /// Optional harvest drought.
    pub drought: Option<DroughtSpec>,
}

impl FleetConfig {
    /// A 1 ms-epoch ring fleet with full calibration.
    pub fn new(nodes: u32, epochs: u64, seed: u64) -> Self {
        Self {
            nodes,
            epochs,
            epoch: 1_000_000,
            seed,
            topology: TopologyKind::Ring,
            calib: CalibDepth::Full,
            drought: None,
        }
    }

    /// The drought envelope as a waveform over fleet time, if any.
    fn drought_envelope(&self) -> Option<Waveform> {
        let d = self.drought?;
        let t0 = Seconds(d.from_epoch as f64 * self.epoch as f64 * 1e-9);
        let t1 = Seconds(d.until_epoch as f64 * self.epoch as f64 * 1e-9);
        Some(Waveform::steps([
            (Seconds(0.0), 1.0),
            (t0, d.factor.clamp(0.0, 1.0)),
            (t1, 1.0),
        ]))
    }
}

/// Shard count for a fleet: a pure function of the node count (never
/// of threads), targeting ~256 nodes per shard, capped at 1024 shards.
pub fn shard_count(nodes: u32) -> usize {
    (nodes as usize).div_ceil(256).clamp(1, 1024)
}

/// One shard: a contiguous node range with its own event queue.
struct Shard {
    base: u32,
    nodes: Vec<NodeState>,
    queue: EventQueue,
    inbox: Vec<Message>,
    outbox: Vec<Message>,
    wakes: u64,
    deliveries: u64,
}

impl Shard {
    /// Simulates every event strictly before `horizon`.
    fn run_epoch(
        &mut self,
        horizon: Nanos,
        epoch: Nanos,
        quotas: &[u32; CLASSES],
        topo: &Topology,
        island: &IslandModel,
        sensor: &SensorModel,
    ) {
        // Inject the barrier-routed inbox (already in total message
        // order) into the local queue.
        for m in std::mem::take(&mut self.inbox) {
            self.queue.push(
                m.deliver,
                m.dst,
                EventKind::Deliver {
                    src: m.src,
                    msg_seq: m.seq,
                },
            );
        }
        while let Some(ev) = self.queue.pop_before(horizon) {
            let node = &mut self.nodes[(ev.node - self.base) as usize];
            match ev.kind {
                EventKind::Wake => {
                    self.wakes += 1;
                    node.wake(
                        ev.time,
                        quotas[node.class.index()],
                        island,
                        sensor,
                        topo.links(ev.node),
                        &mut self.outbox,
                    );
                    let next = ev.time + node.class.period_epochs() * epoch;
                    self.queue.push(next, ev.node, EventKind::Wake);
                }
                EventKind::Deliver { src, msg_seq } => {
                    self.deliveries += 1;
                    node.receive(src, msg_seq);
                }
            }
        }
    }
}

/// Per-class fleet totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassReport {
    /// Stable class name.
    pub name: &'static str,
    /// Nodes in the class.
    pub nodes: u32,
    /// Tasks the duty cycle expected.
    pub expected: u64,
    /// Tasks completed under the token discipline.
    pub completed: u64,
}

impl ClassReport {
    /// Quality of service: completed over expected (1.0 when idle).
    pub fn qos(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.completed as f64 / self.expected as f64
        }
    }
}

/// One epoch's arbitration decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Measured fleet harvest power over the previous epoch, watts.
    pub budget_w: f64,
    /// Per-class task quota per wake for this epoch.
    pub quotas: [u32; CLASSES],
}

/// The result of a fleet run. Everything except `wall` is a pure
/// function of the [`FleetConfig`]; [`FleetReport::to_json`] excludes
/// `wall` so its bytes are thread-count-invariant.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The run's configuration echo.
    pub nodes: u32,
    /// Epochs simulated.
    pub epochs: u64,
    /// Epoch length, nanoseconds.
    pub epoch: Nanos,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used (0 = all available).
    pub threads: usize,
    /// Shard count (node-count-derived).
    pub shards: usize,
    /// Topology name.
    pub topology: &'static str,
    /// Wake events processed.
    pub wakes: u64,
    /// Message deliveries processed.
    pub deliveries: u64,
    /// Messages still in flight when the run ended.
    pub inflight: u64,
    /// Fleet-wide merged counters.
    pub summary: NodeSummary,
    /// Fleet-wide merged energy ledger (integer femtojoules).
    pub ledger: NodeLedger,
    /// Per-class totals.
    pub classes: [ClassReport; CLASSES],
    /// Per-epoch arbitration decisions.
    pub epoch_rows: Vec<EpochRow>,
    /// FNV-1a digest over every node's counters, ledger and sensing
    /// history plus the arbitration trace — the determinism pin.
    pub digest: u64,
    /// Wall-clock time of the run (excluded from `to_json`).
    pub wall: std::time::Duration,
}

impl FleetReport {
    /// Total events processed (wakes + deliveries).
    pub fn events(&self) -> u64 {
        self.wakes + self.deliveries
    }

    /// The merged fleet telemetry: the associative femtojoule ledger
    /// rendered into `emc-obs` accounts, plus fleet counters and
    /// per-class QoS gauges.
    pub fn telemetry(&self) -> Telemetry {
        let mut t = Telemetry::new();
        t.energy = self.ledger.to_energy_ledger();
        let c = t.metrics.counter("fleet.wakes");
        t.metrics.inc(c, self.wakes);
        let c = t.metrics.counter("fleet.deliveries");
        t.metrics.inc(c, self.deliveries);
        let c = t.metrics.counter("fleet.tasks.completed");
        t.metrics.inc(c, self.summary.completed);
        let c = t.metrics.counter("fleet.tasks.refused");
        t.metrics.inc(c, self.summary.refused);
        let c = t.metrics.counter("fleet.msgs.sent");
        t.metrics.inc(c, self.summary.sent);
        let c = t.metrics.counter("fleet.msgs.dropped");
        t.metrics.inc(c, self.summary.dropped);
        for class in &self.classes {
            let g = t.metrics.gauge(format!("fleet.qos.{}", class.name));
            t.metrics.set_gauge(g, class.qos());
        }
        t
    }

    /// Renders the report as deterministic JSON: no wall-clock, no
    /// float formatting surprises (fixed-notation via the repo's
    /// `json_number` convention is not available here, so energies are
    /// printed as exact femtojoule integers and rates as bit-exact
    /// shortest-round-trip floats).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        s.push_str(&format!("  \"epoch_ns\": {},\n", self.epoch));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"shards\": {},\n", self.shards));
        s.push_str(&format!("  \"topology\": \"{}\",\n", self.topology));
        s.push_str(&format!("  \"wakes\": {},\n", self.wakes));
        s.push_str(&format!("  \"deliveries\": {},\n", self.deliveries));
        s.push_str(&format!("  \"inflight\": {},\n", self.inflight));
        let sm = &self.summary;
        s.push_str(&format!("  \"tasks_expected\": {},\n", sm.expected));
        s.push_str(&format!("  \"tasks_completed\": {},\n", sm.completed));
        s.push_str(&format!("  \"tasks_refused\": {},\n", sm.refused));
        s.push_str(&format!("  \"island_ops\": {},\n", sm.ops));
        s.push_str(&format!("  \"msgs_sent\": {},\n", sm.sent));
        s.push_str(&format!("  \"msgs_received\": {},\n", sm.received));
        s.push_str(&format!("  \"msgs_dropped\": {},\n", sm.dropped));
        let l = &self.ledger;
        s.push_str(&format!("  \"harvested_fj\": {},\n", l.harvested_fj));
        s.push_str(&format!("  \"spilled_fj\": {},\n", l.spilled_fj));
        s.push_str(&format!("  \"sense_fj\": {},\n", l.sense_fj));
        s.push_str(&format!("  \"compute_fj\": {},\n", l.compute_fj));
        s.push_str(&format!("  \"radio_fj\": {},\n", l.radio_fj));
        s.push_str(&format!("  \"idle_fj\": {},\n", l.idle_fj));
        s.push_str(&format!("  \"conversion_loss_fj\": {},\n", l.loss_fj));
        s.push_str(&format!("  \"deficit_fj\": {},\n", l.deficit_fj));
        s.push_str(&format!("  \"reservoir_fj\": {},\n", l.stored_fj));
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"nodes\": {}, \"expected\": {}, \"completed\": {}, \"qos\": {}}}{}\n",
                c.name,
                c.nodes,
                c.expected,
                c.completed,
                c.qos(),
                if i + 1 < self.classes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"epoch_quotas\": [\n");
        for (i, r) in self.epoch_rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"epoch\": {}, \"budget_w\": {}, \"quotas\": [{}, {}, {}]}}{}\n",
                r.epoch,
                r.budget_w,
                r.quotas[0],
                r.quotas[1],
                r.quotas[2],
                if i + 1 < self.epoch_rows.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"digest\": \"{:016x}\"\n", self.digest));
        s.push_str("}\n");
        s
    }
}

/// Estimated delivered-energy quantum of one class task (arbitration's
/// workload unit; the real per-task quantum varies with the sensed
/// voltage, this uses the mid-range sensing point).
fn class_task_energy(class: NodeClass, island: &IslandModel, sensor: &SensorModel) -> f64 {
    let (_, e_sense, _) = sensor.sample(0.62);
    e_sense + class.ops_per_task() as f64 * island.joules_per_op(class.rail().0) + crate::node::TX_J
}

/// Runs the fleet-wide duty arbitration for one epoch: the measured
/// harvest power is the budget of a proportional-share power game
/// whose players are the QoS classes; each class's equilibrium power
/// share becomes extra task attempts per wake on top of the base duty
/// of one.
fn arbitrate(
    budget_w: f64,
    pending: &[u64; CLASSES],
    class_nodes: &[u32; CLASSES],
    task_energy: &[f64; CLASSES],
    epoch_secs: f64,
) -> [u32; CLASSES] {
    let mut quotas = [1u32; CLASSES];
    if budget_w <= 1e-12 {
        return quotas;
    }
    let classes = [NodeClass::Sentinel, NodeClass::Monitor, NodeClass::Archiver];
    let bids: Vec<TaskBid> = classes
        .iter()
        .enumerate()
        .map(|(i, class)| TaskBid {
            // Outstanding work in joules (≥ a whole task so the game
            // stays well-posed when a class is fully drained).
            workload: pending[i].max(1) as f64 * task_energy[i].max(1e-15),
            deadline: class.period_epochs() as f64 * epoch_secs,
        })
        .collect();
    let game = PowerGame::new(budget_w, 1e-3, bids);
    let (bid_vec, _rounds) = game.best_response_dynamics(32);
    let alloc = game.allocation(&bid_vec);
    for i in 0..CLASSES {
        if class_nodes[i] == 0 {
            continue;
        }
        // Energy the class share delivers over one wake period, per
        // node, in whole tasks — extra attempts beyond the base duty.
        let period = classes[i].period_epochs() as f64 * epoch_secs;
        let per_node = alloc[i] * period / f64::from(class_nodes[i]);
        let extra = (per_node / task_energy[i].max(1e-15)).floor().min(7.0) as u32;
        quotas[i] = 1 + extra;
    }
    quotas
}

/// Runs a fleet to completion. `threads` is the campaign worker count
/// (0 = available parallelism); the returned report is bit-identical
/// for any value of it.
pub fn run_fleet(config: &FleetConfig, threads: usize) -> FleetReport {
    assert!(config.nodes > 0, "a fleet needs nodes");
    assert!(config.epochs > 0, "a fleet needs at least one epoch");
    let t0 = Instant::now();

    // Calibrate once per run: gate-level emc-sim runs of the counting
    // rig pin the island curves; gate-level ADC conversions pin the
    // sensor curves.
    let island = IslandModel::calibrate(config.calib);
    let sensor = SensorModel::calibrate(config.calib);
    let topo = Topology::build(config.topology, config.nodes, config.epoch, config.seed);
    assert!(
        topo.min_latency() >= config.epoch,
        "PDES lookahead violated: a link is faster than the epoch barrier"
    );
    let drought = config.drought_envelope();

    // Build shards (contiguous node ranges) and seed the initial wakes
    // in node order.
    let n_shards = shard_count(config.nodes);
    let per_shard = (config.nodes as usize).div_ceil(n_shards);
    let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(n_shards);
    for s in 0..n_shards {
        let base = (s * per_shard) as u32;
        let end = ((s + 1) * per_shard).min(config.nodes as usize) as u32;
        let mut shard = Shard {
            base,
            nodes: Vec::with_capacity((end - base) as usize),
            queue: EventQueue::new(),
            inbox: Vec::new(),
            outbox: Vec::new(),
            wakes: 0,
            deliveries: 0,
        };
        for id in base..end {
            let mut node = NodeState::new(config.seed, id, drought.as_ref());
            let first = node.initial_wake(config.epoch);
            shard.queue.push(first, id, EventKind::Wake);
            shard.nodes.push(node);
        }
        shards.push(Mutex::new(shard));
    }

    let mut class_nodes = [0u32; CLASSES];
    for id in 0..config.nodes {
        class_nodes[NodeClass::of(id).index()] += 1;
    }
    let task_energy = [
        class_task_energy(NodeClass::Sentinel, &island, &sensor),
        class_task_energy(NodeClass::Monitor, &island, &sensor),
        class_task_energy(NodeClass::Archiver, &island, &sensor),
    ];
    let epoch_secs = config.epoch as f64 * 1e-9;

    let mut epoch_rows = Vec::with_capacity(config.epochs as usize);
    let mut quotas = [1u32; CLASSES];
    let mut prev_harvest_fj = 0u64;
    let mut inflight = 0u64;
    let campaign_jobs: Vec<usize> = (0..n_shards).collect();

    for e in 0..config.epochs {
        let applied = quotas;
        let horizon = (e + 1) * config.epoch;
        let cfg = CampaignConfig::new(config.seed ^ e).threads(threads);
        let worker = |idx: &usize, ctx: &RunContext| -> RunReport {
            let mut shard = shards[*idx].lock().expect("shard lock poisoned");
            shard.run_epoch(horizon, config.epoch, &quotas, &topo, &island, &sensor);
            RunReport::from_values(ctx, Vec::new())
        };
        run_campaign(&campaign_jobs, &cfg, worker);

        // ---- Barrier (single-threaded) ----
        // Route messages: drain outboxes in shard order, sort into the
        // total message order, deliver into destination inboxes.
        let mut in_flight: Vec<Message> = Vec::new();
        for shard in &shards {
            let mut shard = shard.lock().expect("shard lock poisoned");
            in_flight.append(&mut shard.outbox);
        }
        in_flight.sort_unstable();
        let last_epoch = e + 1 == config.epochs;
        if last_epoch {
            inflight = in_flight.len() as u64;
        } else {
            for m in in_flight {
                let shard_idx = (m.dst as usize) / per_shard;
                shards[shard_idx]
                    .lock()
                    .expect("shard lock poisoned")
                    .inbox
                    .push(m);
            }
        }

        // Measure the harvest since the previous barrier (exact
        // integer sum over all nodes) and the per-class backlog, then
        // arbitrate the next epoch's duty quotas. The row records the
        // quotas that *applied* during this epoch alongside the budget
        // measured at its end.
        let mut budget_w = 0.0;
        if !last_epoch {
            let mut harvest_fj = 0u64;
            let mut pending = [0u64; CLASSES];
            for shard in &shards {
                let shard = shard.lock().expect("shard lock poisoned");
                for node in &shard.nodes {
                    harvest_fj += node.ledger.harvested_fj;
                    pending[node.class.index()] += node.backlog;
                }
            }
            let delta_fj = harvest_fj - prev_harvest_fj;
            prev_harvest_fj = harvest_fj;
            budget_w = from_femtojoules(delta_fj) / epoch_secs;
            quotas = arbitrate(budget_w, &pending, &class_nodes, &task_energy, epoch_secs);
        }
        epoch_rows.push(EpochRow {
            epoch: e,
            budget_w,
            quotas: applied,
        });
    }

    // ---- Final merge (single-threaded, node order) ----
    let mut digest = FNV_OFFSET;
    let mut summary = NodeSummary::default();
    let mut ledger = NodeLedger::default();
    let mut classes = [
        ClassReport {
            name: NodeClass::Sentinel.name(),
            nodes: class_nodes[0],
            expected: 0,
            completed: 0,
        },
        ClassReport {
            name: NodeClass::Monitor.name(),
            nodes: class_nodes[1],
            expected: 0,
            completed: 0,
        },
        ClassReport {
            name: NodeClass::Archiver.name(),
            nodes: class_nodes[2],
            expected: 0,
            completed: 0,
        },
    ];
    let mut wakes = 0u64;
    let mut deliveries = 0u64;
    for shard in &shards {
        let mut shard = shard.lock().expect("shard lock poisoned");
        wakes += shard.wakes;
        deliveries += shard.deliveries;
        // Messages routed into a queue but not yet delivered when the
        // run ended are still in flight (latencies run to 4 epochs).
        inflight += shard.queue.pending_deliveries();
        for node in &mut shard.nodes {
            digest = fnv_fold(digest, node.finish());
            summary = summary.merge(&node.summary);
            ledger = ledger.merge(&node.ledger);
            let ci = node.class.index();
            classes[ci].expected += node.summary.expected;
            classes[ci].completed += node.summary.completed;
        }
    }
    // Fold the arbitration trace and loose ends into the digest.
    for row in &epoch_rows {
        digest = fnv_fold(digest, row.budget_w.to_bits());
        for q in row.quotas {
            digest = fnv_fold(digest, u64::from(q));
        }
    }
    digest = fnv_fold(digest, inflight);

    FleetReport {
        nodes: config.nodes,
        epochs: config.epochs,
        epoch: config.epoch,
        seed: config.seed,
        threads,
        shards: n_shards,
        topology: config.topology.name(),
        wakes,
        deliveries,
        inflight,
        summary,
        ledger,
        classes,
        epoch_rows,
        digest,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config(nodes: u32) -> FleetConfig {
        FleetConfig {
            calib: CalibDepth::Smoke,
            ..FleetConfig::new(nodes, 6, 2011)
        }
    }

    #[test]
    fn shard_count_is_node_derived() {
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(256), 1);
        assert_eq!(shard_count(257), 2);
        assert_eq!(shard_count(100_000), 391);
        assert_eq!(shard_count(1_000_000), 1024);
    }

    #[test]
    fn small_fleet_runs_and_conserves_energy() {
        let report = run_fleet(&smoke_config(60), 1);
        assert_eq!(report.nodes, 60);
        assert!(report.wakes > 0);
        assert!(report.summary.completed > 0, "no tasks completed");
        // Books balance: harvested = spilled + task/idle delivery +
        // loss + stored-now − stored-at-start. The start charge is not
        // in the ledger, so delivered+loss+stored can exceed harvested,
        // but never by more than the initial reservoir bound.
        let l = &report.ledger;
        let delivered = l.sense_fj + l.compute_fj + l.radio_fj + l.idle_fj;
        assert!(l.harvested_fj > 0);
        assert!(delivered > 0);
        // QoS is a ratio in [0, 1].
        for c in &report.classes {
            let q = c.qos();
            assert!((0.0..=1.0).contains(&q), "{} qos {q}", c.name);
        }
    }

    #[test]
    fn messages_flow_between_nodes() {
        let report = run_fleet(&smoke_config(48), 1);
        assert!(report.summary.sent > 0, "no messages sent");
        assert_eq!(
            report.summary.sent,
            report.summary.received + report.summary.dropped + report.inflight,
            "message conservation violated"
        );
    }

    #[test]
    fn drought_degrades_qos() {
        let mut base = smoke_config(90);
        base.epochs = 12;
        let healthy = run_fleet(&base, 1);
        let mut dry = base.clone();
        dry.drought = Some(DroughtSpec {
            from_epoch: 2,
            until_epoch: 12,
            factor: 0.0,
        });
        let drought = run_fleet(&dry, 1);
        let qos = |r: &FleetReport| {
            let e: u64 = r.classes.iter().map(|c| c.expected).sum();
            let c: u64 = r.classes.iter().map(|c| c.completed).sum();
            c as f64 / e.max(1) as f64
        };
        assert!(
            qos(&drought) < qos(&healthy),
            "drought {} vs healthy {}",
            qos(&drought),
            qos(&healthy)
        );
        assert!(drought.ledger.harvested_fj < healthy.ledger.harvested_fj);
    }

    #[test]
    fn json_is_stable_and_wall_free() {
        let report = run_fleet(&smoke_config(30), 1);
        let json = report.to_json();
        assert!(json.contains("\"digest\""));
        assert!(!json.contains("wall"));
        // Same config → byte-identical JSON.
        let again = run_fleet(&smoke_config(30), 1);
        assert_eq!(json, again.to_json());
    }
}
