//! Property test over every completion-detector width the dual-rail
//! encoding supports (1..=64): the generated tree is well-formed, and
//! its `done` output acknowledges **exactly** when all bits hold
//! codewords — rising only once the last bit becomes valid, and
//! falling only once the last bit has returned to spacer — regardless
//! of the (seeded, random) arrival order and rail polarity per bit.

use emc_device::DeviceModel;
use emc_gen::completion_tree;
use emc_netlist::NetId;
use emc_prng::{Rng, StdRng};
use emc_sim::{Simulator, SupplyKind};
use emc_units::Waveform;

fn shuffled(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

#[test]
fn ack_exactly_when_all_bits_valid_for_widths_1_to_64() {
    for width in 1..=64usize {
        let gc = completion_tree(width, "cd");
        assert!(
            gc.netlist.validate().is_empty(),
            "width {width}: structural diagnostics"
        );
        assert!(gc.netlist.check().is_ok(), "width {width}: check failed");

        let rails: Vec<(NetId, NetId)> = (0..width)
            .map(|i| {
                (
                    gc.netlist.find_net(&format!("cd.w{i}.t")).expect("t rail"),
                    gc.netlist.find_net(&format!("cd.w{i}.f")).expect("f rail"),
                )
            })
            .collect();
        let done = *gc.netlist.outputs().first().expect("done output");

        let mut sim = Simulator::new(gc.netlist.clone(), DeviceModel::umc90());
        let vdd = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(1.0)));
        sim.assign_all(vdd);
        sim.start();
        sim.run_to_quiescence(10_000);
        assert!(!sim.value(done), "width {width}: done high at reset");

        let mut rng = StdRng::seed_from_u64(width as u64);
        // Fill in a random order with a random rail per bit: done must
        // stay low until the very last bit becomes valid.
        let chosen: Vec<NetId> = rails
            .iter()
            .map(|&(t, f)| if rng.gen_range(0u8..2) == 0 { t } else { f })
            .collect();
        let fill_order = shuffled(width, &mut rng);
        for (k, &bit) in fill_order.iter().enumerate() {
            sim.schedule_input(chosen[bit], sim.now(), true);
            sim.run_to_quiescence(10_000);
            assert_eq!(
                sim.value(done),
                k + 1 == width,
                "width {width}: done wrong after {} of {width} bits valid",
                k + 1
            );
        }
        // Drain in another random order: done must stay high until the
        // very last bit returns to spacer.
        let drain_order = shuffled(width, &mut rng);
        for (k, &bit) in drain_order.iter().enumerate() {
            sim.schedule_input(chosen[bit], sim.now(), false);
            sim.run_to_quiescence(10_000);
            assert_eq!(
                sim.value(done),
                k + 1 != width,
                "width {width}: done wrong after {} of {width} bits drained",
                k + 1
            );
        }
    }
}

#[test]
fn tree_shape_matches_width() {
    for width in 1..=64usize {
        let gc = completion_tree(width, "cd");
        let h = gc.netlist.kind_histogram();
        // One validity OR per bit, and a C-element tree with exactly
        // width-1 internal nodes over the OR leaves.
        assert_eq!(h.get("OR"), Some(&width), "width {width}");
        if width > 1 {
            assert_eq!(h.get("C"), Some(&(width - 1)), "width {width}");
        } else {
            assert_eq!(h.get("C"), None);
        }
    }
}
