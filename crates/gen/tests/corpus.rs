//! Pinned corpus of generated netlists in the `emcnet` text format.
//!
//! Conventions (see DESIGN.md): every file under `tests/fixtures/` is
//! the exact `emc_netlist::to_text` output of a named plan, with the
//! seed embedded in the filename (`corpus_seed{seed:016x}.emcnet` for
//! exemplars, `fuzz_seed{seed:016x}.emcnet` for shrunk reproducers the
//! fuzzer writes on failure). This test pins all of them: each file
//! must import cleanly, re-export to the identical bytes, and — being a
//! closed generated circuit — still pass the full differential check
//! when paired with its plan's environment.
//!
//! Regenerate after an intentional format change with
//! `EMC_BLESS=1 cargo test -p emc-gen --test corpus`.

use std::path::PathBuf;

use emc_gen::{check_generated, CheckOptions, GenBounds, GeneratedCircuit, Plan};

/// The exemplar corpus: one pinned seed per generator family of
/// interest. Seeds were picked (from the smoke-bounds draw) so the six
/// plans cover six distinct families.
const CORPUS_SEEDS: [u64; 6] = [
    0x057e_cade_6a7c_2132, // micropipeline
    0xbe02_0c31_9a78_d0d8, // dims-adder
    0x83ac_adce_c37d_6309, // block-graph
    0x1042_c69e_32ed_66bb, // wchb-datapath
    0x4206_68b9_c7e0_f0f1, // pipelined-array
    0x29de_4a7b_b761_e8a6, // completion-tree
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn corpus_circuit(seed: u64) -> GeneratedCircuit {
    Plan::from_seed(seed, &GenBounds::smoke()).build()
}

#[test]
fn corpus_files_are_pinned_and_round_trip() {
    let dir = fixtures_dir();
    let bless = std::env::var_os("EMC_BLESS").is_some();
    for seed in CORPUS_SEEDS {
        let gc = corpus_circuit(seed);
        let text = emc_netlist::to_text(&gc.netlist);
        let path = dir.join(format!("corpus_seed{seed:016x}.emcnet"));
        if bless {
            std::fs::create_dir_all(&dir).expect("create fixtures dir");
            std::fs::write(&path, &text).expect("write fixture");
            continue;
        }
        let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with EMC_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            pinned,
            text,
            "seed {seed:016x}: generator output drifted from pinned fixture {}",
            path.display()
        );
        // Import → export must reproduce the file bytes exactly.
        let imported =
            emc_netlist::from_text(&pinned).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            emc_netlist::to_text(&imported),
            pinned,
            "seed {seed:016x}: re-export not byte-stable"
        );
    }
}

#[test]
fn every_fixture_on_disk_imports_and_reexports_byte_stably() {
    // Covers fuzzer-written reproducers too, whatever their names:
    // anything committed under tests/fixtures/ must stay loadable.
    let dir = fixtures_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "emcnet") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("read fixture");
        let imported =
            emc_netlist::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Comment/blank lines are not preserved by export; strip them
        // from the file before comparing.
        let canonical: String = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            emc_netlist::to_text(&imported),
            canonical,
            "{}: re-export differs from canonicalised file",
            path.display()
        );
    }
    assert!(seen >= CORPUS_SEEDS.len(), "corpus fixtures missing");
}

#[test]
fn corpus_circuits_still_pass_the_differential_check() {
    let opts = CheckOptions {
        state_cap: 60_000,
        rounds: 4,
    };
    for seed in CORPUS_SEEDS {
        let gc = corpus_circuit(seed);
        let out = check_generated(&gc, seed, &opts);
        assert!(out.is_ok(), "seed {seed:016x}: {:?}", out.failure);
    }
}
