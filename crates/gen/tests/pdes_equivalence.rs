//! PDES-vs-sequential equivalence over every generator family.
//!
//! Each circuit is split into 2–3 ideal-constant Vdd domains (different
//! voltages, so cross-domain delays genuinely differ), driven by a
//! seeded single-action environment at a fixed cadence, and simulated
//! three ways: sequentially on one `Simulator`, and in parallel on a
//! `PdesSimulator` at 1, 2 and 8 threads. The canonical `(time, net,
//! value)`-sorted trace digests must agree across all four runs, fired
//! counts and per-domain switching energy must match exactly, and
//! total energy must match to rounding (leakage integration
//! breakpoints differ between the two engines).
//!
//! Domain assignment is deliberately varied: the `_domains` family
//! variants use their structural decomposition (row-parallel /
//! block-chained), everything else gets a round-robin gate scatter —
//! the worst possible cut, where nearly every net crosses a partition
//! boundary.

use emc_device::DeviceModel;
use emc_gen::{
    block_graph_domains, completion_tree, dims_adder, micropipeline, pipelined_array_domains,
    wchb_datapath, BlockSpec, GeneratedCircuit, SimView,
};
use emc_netlist::{GateKind, NetId};
use emc_prng::{Rng, StdRng};
use emc_sim::{
    round_robin_assignment, PdesPartitionSpec, PdesSimulator, Simulator, SupplyKind, Trace,
};
use emc_units::{Seconds, Waveform};

/// Action cadence — generous at the lowest rail voltage so the circuit
/// is quiescent when the driver reads the sequential view.
const STEP: f64 = 200e-9;
const VOLTS: [f64; 3] = [1.0, 0.8, 0.6];

fn specs(parts: usize) -> Vec<PdesPartitionSpec> {
    (0..parts)
        .map(|d| PdesPartitionSpec {
            name: format!("vdd{d}"),
            supply: SupplyKind::ideal(Waveform::constant(VOLTS[d % VOLTS.len()])),
        })
        .collect()
}

struct SeqRun {
    canonical_digest: u64,
    fired: u64,
    switching: Vec<f64>,
    total: Vec<f64>,
    actions: Vec<(Seconds, NetId, bool)>,
    t_final: Seconds,
}

/// Drives the sequential oracle: quiesce, pick one enabled environment
/// action with the seeded PRNG, inject, repeat. Records the injected
/// sequence so the PDES runs replay *exactly* the same stimulus.
fn run_sequential(gc: &GeneratedCircuit, assignment: &[u32], parts: usize, seed: u64) -> SeqRun {
    let rounds = 14usize;
    let mut sim = Simulator::new(gc.netlist.clone(), DeviceModel::umc90());
    let doms: Vec<_> = specs(parts)
        .iter()
        .map(|s| sim.add_domain(&s.name, s.supply.clone()))
        .collect();
    for (gid, g) in gc.netlist.iter_gates() {
        if g.kind() == GateKind::Input {
            continue;
        }
        sim.assign_domain(gid, doms[assignment[gid.index()] as usize]);
    }
    for &(net, v) in &gc.initial {
        sim.set_initial(net, v);
    }
    for net in gc.netlist.iter_nets() {
        sim.watch(net);
    }
    sim.start();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut env_state = gc.env.initial();
    let mut actions = Vec::new();
    let mut fired = 0u64;
    for k in 0..rounds {
        let t = Seconds(STEP * (k + 1) as f64);
        fired += sim.run_until(t).fired;
        let mut acts = gc.env.step(env_state, &SimView(&sim));
        acts.retain(|a| sim.value(a.net) != a.value);
        if acts.is_empty() {
            continue;
        }
        let a = acts[rng.gen_range(0..acts.len())].clone();
        sim.schedule_input(a.net, t, a.value);
        env_state = a.next;
        actions.push((t, a.net, a.value));
    }
    let t_final = Seconds(STEP * (rounds + 1) as f64);
    fired += sim.run_until(t_final).fired;
    assert!(
        sim.hazards().is_empty(),
        "{}: sequential run must be hazard-free",
        gc.name
    );
    assert!(!actions.is_empty(), "{}: driver never acted", gc.name);
    assert!(fired > 0, "{}: nothing fired", gc.name);
    SeqRun {
        canonical_digest: sim.trace().canonical_digest(),
        fired,
        switching: doms
            .iter()
            .map(|&d| sim.domain(d).switching_energy().0)
            .collect(),
        total: doms.iter().map(|&d| sim.energy_drawn(d).0).collect(),
        actions,
        t_final,
    }
}

fn run_pdes(
    gc: &GeneratedCircuit,
    assignment: &[u32],
    parts: usize,
    threads: usize,
    oracle: &SeqRun,
) -> (Trace, u64) {
    let mut sim = PdesSimulator::new(
        gc.netlist.clone(),
        DeviceModel::umc90(),
        &specs(parts),
        assignment,
    );
    sim.set_threads(threads);
    for &(net, v) in &gc.initial {
        sim.set_initial(net, v);
    }
    for net in gc.netlist.iter_nets() {
        sim.watch(net);
    }
    sim.start();
    let mut fired = 0u64;
    for &(t, net, value) in &oracle.actions {
        fired += sim.run_until(t).fired;
        sim.schedule_input(net, t, value);
    }
    let stats = sim.run_until(oracle.t_final);
    fired += stats.fired;
    assert_eq!(
        stats.hazards, 0,
        "{}: PDES run must be hazard-free",
        gc.name
    );

    assert_eq!(
        oracle.fired, fired,
        "{}: fired count diverged at {threads} threads",
        gc.name
    );
    for p in 0..parts {
        assert_eq!(
            oracle.switching[p].to_bits(),
            sim.switching_energy(p).0.to_bits(),
            "{}: switching energy of domain {p} must be bit-identical",
            gc.name
        );
        let (a, b) = (oracle.total[p], sim.energy_drawn(p).0);
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(b.abs()),
            "{}: total energy of domain {p} off by more than rounding: {a} vs {b}",
            gc.name
        );
    }
    (sim.trace(), fired)
}

/// The full three-way comparison for one circuit + assignment.
fn assert_equivalent(gc: &GeneratedCircuit, assignment: &[u32], parts: usize, seed: u64) {
    let oracle = run_sequential(gc, assignment, parts, seed);
    let mut digests = Vec::new();
    for threads in [1, 2, 8] {
        let (trace, _) = run_pdes(gc, assignment, parts, threads, &oracle);
        // The merged PDES trace is canonically sorted by construction,
        // so its plain digest is directly comparable.
        assert_eq!(
            oracle.canonical_digest,
            trace.digest(),
            "{}: trace diverged from sequential at {threads} threads",
            gc.name
        );
        digests.push(trace.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "{}: thread count changed the trace",
        gc.name
    );
}

/// Round-robin scatter over `parts` domains — maximal crossing stress.
fn scatter(gc: &GeneratedCircuit, parts: usize, seed: u64) {
    let assignment = round_robin_assignment(&gc.netlist, parts);
    assert_equivalent(gc, &assignment, parts, seed);
}

#[test]
fn completion_tree_scattered() {
    scatter(&completion_tree(3, "t"), 3, 11);
}

#[test]
fn wchb_datapath_scattered() {
    scatter(&wchb_datapath(2, 2, "p"), 3, 12);
}

#[test]
fn dims_adder_scattered() {
    scatter(&dims_adder(2, "a"), 2, 13);
}

#[test]
fn micropipeline_scattered() {
    scatter(&micropipeline(4, "m"), 3, 14);
}

#[test]
fn pipelined_array_row_domains() {
    let gc = pipelined_array_domains(3, 2, 3, "ar");
    let assignment = gc.domain_assignment();
    assert_equivalent(&gc, &assignment, gc.domain_count(), 15);
}

#[test]
fn block_graph_block_domains() {
    let blocks = [
        BlockSpec {
            func: 0,
            lhs: 0,
            rhs: 1,
        },
        BlockSpec {
            func: 2,
            lhs: 3,
            rhs: 2,
        },
        BlockSpec {
            func: 4,
            lhs: 3,
            rhs: 4,
        },
    ];
    let gc = block_graph_domains(3, &blocks, 2, "bg");
    let assignment = gc.domain_assignment();
    assert_equivalent(&gc, &assignment, gc.domain_count(), 16);
}

#[test]
fn block_graph_scattered() {
    let blocks = [
        BlockSpec {
            func: 1,
            lhs: 0,
            rhs: 1,
        },
        BlockSpec {
            func: 5,
            lhs: 2,
            rhs: 3,
        },
    ];
    scatter(&emc_gen::block_graph(3, &blocks, "bg"), 3, 17);
}
