//! Parameterized circuit families.
//!
//! Every constructor returns a [`GeneratedCircuit`]: a closed netlist
//! plus the environment model that drives it, directly consumable by
//! the verifier, the simulator, and the campaign engine. The families
//! cover the repository's speed-independent design space:
//!
//! * [`completion_tree`] — a W-bit completion detector under fill/drain;
//! * [`wchb_datapath`] — an N-stage, W-bit WCHB dual-rail pipeline;
//! * [`dims_adder`] — a W-bit DIMS ripple-carry adder datapath;
//! * [`micropipeline`] — an M-stage Muller control pipeline;
//! * [`pipelined_array`] — an R×C array of independent pipeline rows;
//! * [`block_graph`] — a random DAG of DIMS gates closed by a single
//!   completion detector over every unconsumed dual-rail signal.

use std::sync::Arc;

use emc_async::{dims_gate2, DualRailAdder, DualRailPipeline, MullerPipeline};
use emc_netlist::{completion_detector, DualRail, Netlist};

use crate::env::{ComposedEnv, EnvModel, FillDrainEnv, MicropipelineEnv, WchbEnv};
use crate::GeneratedCircuit;

/// One DIMS block in a [`block_graph`] plan: a 2-input function applied
/// to two earlier signals. Operand references are raw draws reduced
/// modulo the signal pool size at build time, so *any* subsequence of a
/// block list is itself a valid plan — which is what makes differential
/// failures shrinkable by plain list bisection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSpec {
    /// Function selector, reduced modulo [`BLOCK_FUNCTIONS`]`.len()`.
    pub func: u8,
    /// Raw draw for the left operand (mod pool size at build time).
    pub lhs: u64,
    /// Raw draw for the right operand (mod pool size at build time).
    pub rhs: u64,
}

/// A named 2-input boolean function usable as a [`BlockSpec`] body.
pub type BlockFunction = (&'static str, fn(bool, bool) -> bool);

/// The 2-input functions a [`BlockSpec`] may select: every non-trivial
/// symmetric-complete choice that keeps both DIMS output rails driven
/// by real minterms (constant functions would tie a rail to `Const0`
/// and never produce a codeword).
pub const BLOCK_FUNCTIONS: [BlockFunction; 6] = [
    ("and", |a, b| a & b),
    ("or", |a, b| a | b),
    ("xor", |a, b| a ^ b),
    ("nand", |a, b| !(a & b)),
    ("nor", |a, b| !(a | b)),
    ("xnor", |a, b| !(a ^ b)),
];

/// A W-bit completion detector (per-bit validity OR into a C-element
/// tree — the paper's Fig. 4 Design 1) closed by a fill/drain
/// environment gated on its own `done` output.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 64`.
pub fn completion_tree(width: usize, name: &str) -> GeneratedCircuit {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut nl = Netlist::new();
    let pairs: Vec<DualRail> = (0..width)
        .map(|i| DualRail::input(&mut nl, &format!("{name}.w{i}")))
        .collect();
    let done = completion_detector(&mut nl, &pairs, &format!("{name}.cd"));
    nl.mark_output(done);
    GeneratedCircuit {
        name: format!("{name}-tree{width}"),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(FillDrainEnv { pairs, done }),
        domains: Vec::new(),
    }
}

/// An `stages`-deep, `width`-bit WCHB dual-rail pipeline with a fully
/// reactive four-phase sender and receiver.
///
/// # Panics
///
/// Panics if `stages == 0`, `width == 0`, or `width > 64`.
pub fn wchb_datapath(stages: usize, width: usize, name: &str) -> GeneratedCircuit {
    let mut nl = Netlist::new();
    let p = DualRailPipeline::build_wide(&mut nl, stages, width, name);
    let env = WchbEnv {
        inputs: p.inputs().to_vec(),
        sender_ack: p.sender_ack(),
        outputs: p.outputs().to_vec(),
        sink_ack: p.sink_ack(),
    };
    GeneratedCircuit {
        name: format!("{name}-wchb{stages}x{width}"),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(env),
        domains: Vec::new(),
    }
}

/// A `width`-bit DIMS ripple-carry adder under the four-phase dual-rail
/// fill/drain environment.
///
/// # Panics
///
/// Panics if `width` is not in `1..=63`.
pub fn dims_adder(width: usize, name: &str) -> GeneratedCircuit {
    let mut nl = Netlist::new();
    let add = DualRailAdder::build(&mut nl, width, name);
    let mut pairs = Vec::with_capacity(2 * width);
    for op in ["a", "b"] {
        for i in 0..width {
            pairs.push(DualRail {
                t: nl
                    .find_net(&format!("{name}.{op}{i}.t"))
                    .expect("adder input rail"),
                f: nl
                    .find_net(&format!("{name}.{op}{i}.f"))
                    .expect("adder input rail"),
            });
        }
    }
    let done = add.done();
    GeneratedCircuit {
        name: format!("{name}-adder{width}"),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(FillDrainEnv { pairs, done }),
        domains: Vec::new(),
    }
}

/// An `stages`-stage Muller control pipeline with a two-phase sender
/// and an eager consumer.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn micropipeline(stages: usize, name: &str) -> GeneratedCircuit {
    let mut nl = Netlist::new();
    let p = MullerPipeline::build(&mut nl, stages, name);
    let env = MicropipelineEnv {
        req: p.request(),
        head: p.stages()[0],
        tail: *p.stages().last().expect("non-empty pipeline"),
        tail_ack: p.tail_ack(),
    };
    GeneratedCircuit {
        name: format!("{name}-mp{stages}"),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(env),
        domains: Vec::new(),
    }
}

/// An `rows` × `cols` pipelined array block: independent 1-bit WCHB
/// rows of depth `cols`, each closed by its own sender/receiver pair.
/// The joint state space is the product of the rows', so the whole
/// block exercises concurrent token flow without any cross-row timing
/// coupling.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn pipelined_array(rows: usize, cols: usize, name: &str) -> GeneratedCircuit {
    assert!(rows >= 1, "array needs at least one row");
    let mut nl = Netlist::new();
    let mut parts: Vec<Arc<dyn EnvModel>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let p = DualRailPipeline::build(&mut nl, cols, &format!("{name}.r{r}"));
        parts.push(Arc::new(WchbEnv {
            inputs: p.inputs().to_vec(),
            sender_ack: p.sender_ack(),
            outputs: p.outputs().to_vec(),
            sink_ack: p.sink_ack(),
        }));
    }
    GeneratedCircuit {
        name: format!("{name}-array{rows}x{cols}"),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(ComposedEnv { parts }),
        domains: Vec::new(),
    }
}

/// [`pipelined_array`] with a suggested Vdd-domain decomposition: row
/// `r` goes to domain `r % parts`. Rows are mutually independent, so
/// the cut has **zero crossing nets** — the embarrassingly-parallel end
/// of the PDES workload spectrum.
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0`, or `parts == 0`.
pub fn pipelined_array_domains(
    rows: usize,
    cols: usize,
    parts: usize,
    name: &str,
) -> GeneratedCircuit {
    assert!(rows >= 1, "array needs at least one row");
    assert!(parts >= 1, "at least one domain");
    let mut nl = Netlist::new();
    let mut envs: Vec<Arc<dyn EnvModel>> = Vec::with_capacity(rows);
    let n_domains = parts.min(rows);
    let mut domains = vec![Vec::new(); n_domains];
    for r in 0..rows {
        let lo = nl.gate_count();
        let p = DualRailPipeline::build(&mut nl, cols, &format!("{name}.r{r}"));
        for i in lo..nl.gate_count() {
            domains[r % n_domains].push(nl.gate_id(i));
        }
        envs.push(Arc::new(WchbEnv {
            inputs: p.inputs().to_vec(),
            sender_ack: p.sender_ack(),
            outputs: p.outputs().to_vec(),
            sink_ack: p.sink_ack(),
        }));
    }
    GeneratedCircuit {
        name: format!("{name}-array{rows}x{cols}d{}", domains.len()),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(ComposedEnv { parts: envs }),
        domains,
    }
}

/// [`block_graph`] with a suggested Vdd-domain decomposition: block `k`
/// goes to domain `k % parts`, while the input sources and the closing
/// completion detector stay in domain 0. Consecutive blocks feed each
/// other, so the cut is **crossing-heavy** — the synchronization-bound
/// end of the PDES workload spectrum.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 64`, or `parts == 0`.
pub fn block_graph_domains(
    width: usize,
    blocks: &[BlockSpec],
    parts: usize,
    name: &str,
) -> GeneratedCircuit {
    assert!(parts >= 1, "at least one domain");
    let parts = parts.min(blocks.len().max(1));
    let mut gc = block_graph(width, blocks, name);
    let mut domains = vec![Vec::new(); parts];
    // block_graph appends gates in construction order: the dual-rail
    // input sources first, then each block's DIMS cluster, then the
    // completion detector. Recover the block boundaries by name prefix.
    for i in 0..gc.netlist.gate_count() {
        let gid = gc.netlist.gate_id(i);
        let gname = gc.netlist.net_name(gc.netlist.gate_ref(gid).output());
        let domain = gname
            .strip_prefix(&format!("{name}.g"))
            .and_then(|rest| rest.split('_').next())
            .and_then(|k| k.parse::<usize>().ok())
            .map_or(0, |k| k % parts);
        domains[domain].push(gid);
    }
    gc.name = format!("{name}-graph{width}b{}d{}", blocks.len(), parts);
    gc.domains = domains;
    gc
}

/// A random SI-composable block graph: `width` dual-rail inputs, one
/// DIMS gate per [`BlockSpec`] over the growing signal pool, and a
/// single completion detector over every signal no later block
/// consumes (including unconsumed inputs), closed by a fill/drain
/// environment on that detector.
///
/// Speed independence is by construction: the environment only drains
/// after `done` rises, `done` only rises once every pool signal's cone
/// is valid, and only falls once every cone is back at spacer — so no
/// excited gate is ever disabled.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 64`.
pub fn block_graph(width: usize, blocks: &[BlockSpec], name: &str) -> GeneratedCircuit {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut nl = Netlist::new();
    let inputs: Vec<DualRail> = (0..width)
        .map(|i| DualRail::input(&mut nl, &format!("{name}.x{i}")))
        .collect();
    let mut pool: Vec<DualRail> = inputs.clone();
    let mut consumed = vec![false; width];
    for (k, b) in blocks.iter().enumerate() {
        let li = (b.lhs % pool.len() as u64) as usize;
        let ri = (b.rhs % pool.len() as u64) as usize;
        let (fname, f) = BLOCK_FUNCTIONS[b.func as usize % BLOCK_FUNCTIONS.len()];
        let out = dims_gate2(
            &mut nl,
            f,
            pool[li],
            pool[ri],
            &format!("{name}.g{k}_{fname}"),
        );
        consumed[li] = true;
        consumed[ri] = true;
        pool.push(out);
        consumed.push(false);
    }
    let observed: Vec<DualRail> = pool
        .iter()
        .zip(&consumed)
        .filter(|(_, &c)| !c)
        .map(|(p, _)| *p)
        .collect();
    let done = completion_detector(&mut nl, &observed, &format!("{name}.cd"));
    nl.mark_output(done);
    GeneratedCircuit {
        name: format!("{name}-graph{width}b{}", blocks.len()),
        netlist: nl,
        initial: Vec::new(),
        env: Arc::new(FillDrainEnv {
            pairs: inputs,
            done,
        }),
        domains: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_verify::Verifier;

    fn assert_clean(gc: &GeneratedCircuit) {
        assert!(
            gc.netlist.validate().is_empty(),
            "{}: structural diagnostics",
            gc.name
        );
        let report = Verifier::new()
            .with_state_cap(200_000)
            .verify(&gc.verify_circuit());
        assert!(
            report.is_clean(),
            "{}: {:#?}",
            report.circuit,
            report.diagnostics
        );
        assert!(report.exhaustive, "{}: exploration capped", report.circuit);
        assert!(
            report.states > 1,
            "{}: degenerate state space",
            report.circuit
        );
    }

    #[test]
    fn completion_trees_verify_clean() {
        for width in [1, 2, 3] {
            assert_clean(&completion_tree(width, "t"));
        }
    }

    #[test]
    fn wchb_datapaths_verify_clean() {
        assert_clean(&wchb_datapath(1, 1, "p"));
        assert_clean(&wchb_datapath(2, 1, "p"));
        assert_clean(&wchb_datapath(1, 2, "p"));
        assert_clean(&wchb_datapath(2, 2, "p"));
    }

    #[test]
    fn dims_adders_verify_clean() {
        assert_clean(&dims_adder(1, "a"));
        assert_clean(&dims_adder(2, "a"));
    }

    #[test]
    fn micropipelines_verify_clean() {
        for stages in [1, 2, 4] {
            assert_clean(&micropipeline(stages, "m"));
        }
    }

    #[test]
    fn pipelined_arrays_verify_clean() {
        assert_clean(&pipelined_array(1, 1, "ar"));
        assert_clean(&pipelined_array(2, 2, "ar"));
    }

    #[test]
    fn block_graphs_verify_clean() {
        // A layered DAG: g0 = x0 op x1, g1 = g0 op x2, g2 = g0 op g1
        // (shared fan-out), plus a block list that leaves an input
        // unconsumed.
        let blocks = [
            BlockSpec {
                func: 0,
                lhs: 0,
                rhs: 1,
            },
            BlockSpec {
                func: 2,
                lhs: 3,
                rhs: 2,
            },
            BlockSpec {
                func: 4,
                lhs: 3,
                rhs: 4,
            },
        ];
        assert_clean(&block_graph(3, &blocks, "bg"));
        // Empty block list degenerates to a completion tree.
        assert_clean(&block_graph(2, &[], "bg"));
    }

    #[test]
    fn domain_variants_cover_every_gate_and_verify_clean() {
        let gc = pipelined_array_domains(2, 2, 2, "ar");
        assert_eq!(gc.domains.len(), 2);
        assert_eq!(
            gc.domains.iter().map(Vec::len).sum::<usize>(),
            gc.netlist.gate_count(),
            "every gate gets a domain"
        );
        assert_eq!(gc.domain_assignment().len(), gc.netlist.gate_count());
        assert_clean(&gc);

        let blocks = [
            BlockSpec {
                func: 0,
                lhs: 0,
                rhs: 1,
            },
            BlockSpec {
                func: 2,
                lhs: 3,
                rhs: 2,
            },
        ];
        let gc = block_graph_domains(3, &blocks, 2, "bg");
        assert_eq!(gc.domains.len(), 2);
        assert_eq!(
            gc.domains.iter().map(Vec::len).sum::<usize>(),
            gc.netlist.gate_count()
        );
        // Block 1 lands in domain 1; the detector and sources in 0.
        assert!(!gc.domains[1].is_empty(), "second block in second domain");
        assert_clean(&gc);
    }

    #[test]
    fn domain_variants_clamp_partition_count() {
        // More requested domains than rows/blocks collapse to the max.
        assert_eq!(pipelined_array_domains(2, 1, 8, "ar").domains.len(), 2);
        assert_eq!(block_graph_domains(2, &[], 4, "bg").domain_count(), 1);
    }

    #[test]
    fn generated_netlists_round_trip_as_text() {
        let gc = wchb_datapath(2, 2, "p");
        let text = emc_netlist::to_text(&gc.netlist);
        let imported = emc_netlist::from_text(&text).expect("round trip");
        assert_eq!(emc_netlist::to_text(&imported), text);
        assert_eq!(imported.net_count(), gc.netlist.net_count());
    }
}
