//! Reusable environment models.
//!
//! The verifier's [`Environment`] is a boxed closure tied to one
//! circuit; a generator needs something it can hand to the verifier
//! *and* replay against a live [`emc_sim::Simulator`]. [`EnvModel`] is
//! that shared form: an explicit protocol machine reading net values
//! through the [`NetView`] abstraction, so the same model closes the
//! circuit for exhaustive exploration and drives the event-driven
//! simulation one action at a time.
//!
//! All models here are *fully reactive* (speed-independent): every
//! action is enabled by observed net values alone, never by elapsed
//! time or quiescence, so they are sound under the unbounded-delay
//! model and under any Vdd schedule.

use std::sync::Arc;

use emc_netlist::{DualRail, NetId};
use emc_sim::Simulator;
use emc_verify::{EnvAction, EnvFootprint, EnvPart, EnvView, Environment};

/// What an environment model may observe: current net values, plus the
/// settledness flag fundamental-mode environments gate on.
pub trait NetView {
    /// The current value of `net`.
    fn value(&self, net: NetId) -> bool;
    /// `true` when the circuit has no excited or pending gate.
    fn quiescent(&self) -> bool;
}

impl NetView for EnvView<'_> {
    fn value(&self, net: NetId) -> bool {
        EnvView::value(self, net)
    }

    fn quiescent(&self) -> bool {
        EnvView::quiescent(self)
    }
}

/// [`NetView`] over a live simulator. Only consulted at event-queue
/// quiescence (the differential driver settles the simulator before
/// asking the environment for actions), so `quiescent` is always true.
pub struct SimView<'a>(pub &'a Simulator);

impl NetView for SimView<'_> {
    fn value(&self, net: NetId) -> bool {
        self.0.value(net)
    }

    fn quiescent(&self) -> bool {
        true
    }
}

/// A sharable environment protocol machine: the generator-side
/// counterpart of [`Environment`], usable both for verification and
/// for driving a simulation.
pub trait EnvModel: Send + Sync {
    /// Initial control state (most models here are stateless).
    fn initial(&self) -> u8 {
        0
    }

    /// Enabled actions in control state `state` given the observed net
    /// values. Must be deterministic in its arguments.
    fn step(&self, state: u8, view: &dyn NetView) -> Vec<EnvAction>;

    /// The model's declared dependency structure, enabling
    /// partial-order/symmetry reduction in the verifier. `None` (the
    /// default) keeps exploration fully unreduced; models returning
    /// `Some` promise that every action [`EnvModel::step`] emits is
    /// attributable to one declared part (see
    /// [`emc_verify::EnvFootprint`]).
    fn footprint(&self) -> Option<EnvFootprint> {
        None
    }
}

/// A stateless, quiescence-free environment part (every model in this
/// module is fully reactive).
fn part(tag: u64, reads: &[NetId], drives: &[NetId]) -> EnvPart {
    EnvPart {
        reads: reads.to_vec(),
        drives: drives.to_vec(),
        uses_quiescence: false,
        stateful: false,
        tag,
    }
}

/// Adapts a shared [`EnvModel`] into the verifier's closure-based
/// [`Environment`].
pub fn to_environment(model: Arc<dyn EnvModel>) -> Environment<'static> {
    let initial = model.initial();
    Environment {
        initial,
        step: Box::new(move |state, view| model.step(state, view)),
    }
}

fn act(net: NetId, value: bool) -> EnvAction {
    EnvAction {
        net,
        value,
        next: 0,
    }
}

/// Four-phase dual-rail producer against a completion (`done`) signal:
/// while `done` is low, offer either rail of every still-spacer pair (a
/// free choice per pair); while `done` is high, drain whatever is high.
/// `done` cannot rise until every pair is valid nor fall until every
/// pair is back at spacer, which is exactly what makes the protocol
/// speed-independent. Closes completion detectors, DIMS datapaths and
/// DIMS block graphs.
pub struct FillDrainEnv {
    /// The environment-driven dual-rail input pairs.
    pub pairs: Vec<DualRail>,
    /// The circuit's completion output observed by the producer.
    pub done: NetId,
}

impl EnvModel for FillDrainEnv {
    fn step(&self, _state: u8, view: &dyn NetView) -> Vec<EnvAction> {
        let mut acts = Vec::new();
        if !view.value(self.done) {
            for p in &self.pairs {
                if !view.value(p.t) && !view.value(p.f) {
                    acts.push(act(p.t, true));
                    acts.push(act(p.f, true));
                }
            }
        } else {
            for p in &self.pairs {
                for rail in [p.t, p.f] {
                    if view.value(rail) {
                        acts.push(act(rail, false));
                    }
                }
            }
        }
        acts
    }

    fn footprint(&self) -> Option<EnvFootprint> {
        // One part per pair: each action reads `done` plus its own
        // pair's rails, so pairs fill/drain independently.
        Some(EnvFootprint::new(
            self.pairs
                .iter()
                .map(|p| part(1, &[self.done, p.t, p.f], &[p.t, p.f]))
                .collect(),
        ))
    }
}

/// Four-phase sender and receiver around a W-bit WCHB pipeline: the
/// sender offers a fresh codeword (free rail choice per bit) from
/// spacer while the stage-0 completion acknowledge is low, and drains
/// once it rises; the receiver acknowledges when every output bit is
/// valid and releases on all-spacer. The width-1 case is the builtin
/// verification suite's WCHB environment.
pub struct WchbEnv {
    /// Input rails, LSB first.
    pub inputs: Vec<DualRail>,
    /// Stage-0 completion acknowledge observed by the sender.
    pub sender_ack: NetId,
    /// Final-stage rails observed by the receiver.
    pub outputs: Vec<DualRail>,
    /// The environment-driven sink acknowledge.
    pub sink_ack: NetId,
}

impl EnvModel for WchbEnv {
    fn step(&self, _state: u8, view: &dyn NetView) -> Vec<EnvAction> {
        let mut acts = Vec::new();
        let ack = view.value(self.sender_ack);
        for p in &self.inputs {
            let (t, f) = (view.value(p.t), view.value(p.f));
            if !t && !f && !ack {
                acts.push(act(p.t, true));
                acts.push(act(p.f, true));
            }
            if t && ack {
                acts.push(act(p.t, false));
            }
            if f && ack {
                acts.push(act(p.f, false));
            }
        }
        let all_valid = self
            .outputs
            .iter()
            .all(|p| view.value(p.t) ^ view.value(p.f));
        let all_spacer = self
            .outputs
            .iter()
            .all(|p| !view.value(p.t) && !view.value(p.f));
        if all_valid && !view.value(self.sink_ack) {
            acts.push(act(self.sink_ack, true));
        }
        if all_spacer && view.value(self.sink_ack) {
            acts.push(act(self.sink_ack, false));
        }
        acts
    }

    fn footprint(&self) -> Option<EnvFootprint> {
        // One sender part per input pair (reads the shared acknowledge
        // plus its own rails) and one receiver part over all output
        // rails and the sink acknowledge.
        let mut parts: Vec<EnvPart> = self
            .inputs
            .iter()
            .map(|p| part(1, &[self.sender_ack, p.t, p.f], &[p.t, p.f]))
            .collect();
        let mut receiver_reads: Vec<NetId> = self.outputs.iter().flat_map(|p| [p.t, p.f]).collect();
        receiver_reads.push(self.sink_ack);
        parts.push(part(2, &receiver_reads, &[self.sink_ack]));
        Some(EnvFootprint::new(parts))
    }
}

/// Two-phase sender and eager consumer for a Muller control pipeline:
/// the request flips once the head stage has matched it, and the tail
/// acknowledge copies the last stage.
pub struct MicropipelineEnv {
    /// The environment-driven request.
    pub req: NetId,
    /// The first C-element stage (sender-side acknowledge).
    pub head: NetId,
    /// The last C-element stage.
    pub tail: NetId,
    /// The environment-driven tail acknowledge.
    pub tail_ack: NetId,
}

impl EnvModel for MicropipelineEnv {
    fn step(&self, _state: u8, view: &dyn NetView) -> Vec<EnvAction> {
        let mut acts = Vec::new();
        if view.value(self.head) == view.value(self.req) {
            acts.push(act(self.req, !view.value(self.req)));
        }
        if view.value(self.tail_ack) != view.value(self.tail) {
            acts.push(act(self.tail_ack, view.value(self.tail)));
        }
        acts
    }

    fn footprint(&self) -> Option<EnvFootprint> {
        Some(EnvFootprint::new(vec![
            part(1, &[self.head, self.req], &[self.req]),
            part(2, &[self.tail_ack, self.tail], &[self.tail_ack]),
        ]))
    }
}

/// The product of independent stateless environments (used by the
/// pipelined-array family, where every row has its own sender and
/// receiver): the enabled actions are the union of the parts'.
pub struct ComposedEnv {
    /// The component environments. Each must be stateless (control
    /// state 0 throughout); the composition does not multiplex the
    /// shared control byte.
    pub parts: Vec<Arc<dyn EnvModel>>,
}

impl EnvModel for ComposedEnv {
    fn step(&self, state: u8, view: &dyn NetView) -> Vec<EnvAction> {
        self.parts
            .iter()
            .flat_map(|p| p.step(state, view))
            .collect()
    }

    fn footprint(&self) -> Option<EnvFootprint> {
        // The concatenation of the components' declarations — available
        // only when every component declares one.
        let mut fp = EnvFootprint::default();
        for p in &self.parts {
            fp.extend(p.footprint()?);
        }
        Some(fp)
    }
}
