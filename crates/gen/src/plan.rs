//! Seed → circuit plans, and shrinking of failing plans.
//!
//! A [`Plan`] is the *recipe* for a generated circuit: the family and
//! its parameter draw, derived deterministically from a single `u64`
//! seed by [`Plan::from_seed`]. Keeping the recipe explicit (instead of
//! generating the netlist straight off the RNG stream) is what makes
//! failures reproducible from the seed alone and shrinkable: any
//! subsequence of a block list, or any smaller parameter value, is
//! itself a valid plan.

use emc_prng::{Rng, StdRng};

use crate::families::{
    block_graph, completion_tree, dims_adder, micropipeline, pipelined_array, wchb_datapath,
    BlockSpec,
};
use crate::GeneratedCircuit;

/// Upper bounds for each family's parameter draw. Bounds trade fuzzing
/// reach against exhaustive-verification cost: every drawn circuit
/// should stay within the verifier's state cap so the differential
/// check can assert reachable-set membership, not just digest equality.
#[derive(Debug, Clone)]
pub struct GenBounds {
    /// Completion-tree width (bits).
    pub max_tree_width: usize,
    /// WCHB pipeline depth (stages).
    pub max_wchb_stages: usize,
    /// WCHB pipeline width (bits).
    pub max_wchb_width: usize,
    /// DIMS adder width (bits).
    pub max_adder_width: usize,
    /// Muller pipeline depth (stages).
    pub max_mp_stages: usize,
    /// Pipelined-array rows.
    pub max_array_rows: usize,
    /// Pipelined-array columns (row depth).
    pub max_array_cols: usize,
    /// Block-graph dual-rail inputs.
    pub max_graph_inputs: usize,
    /// Block-graph DIMS blocks.
    pub max_graph_blocks: usize,
}

impl GenBounds {
    /// Bounds for the CI smoke tier: every family stays exhaustively
    /// explorable in well under a second per seed.
    pub fn smoke() -> Self {
        Self {
            max_tree_width: 6,
            max_wchb_stages: 3,
            max_wchb_width: 2,
            max_adder_width: 2,
            max_mp_stages: 5,
            max_array_rows: 2,
            max_array_cols: 2,
            max_graph_inputs: 3,
            max_graph_blocks: 4,
        }
    }

    /// Bounds for overnight fuzzing: larger draws whose exploration may
    /// hit the state cap (the differential check then falls back to
    /// digest-equality only).
    pub fn full() -> Self {
        Self {
            max_tree_width: 64,
            max_wchb_stages: 6,
            max_wchb_width: 4,
            max_adder_width: 4,
            max_mp_stages: 12,
            max_array_rows: 3,
            max_array_cols: 3,
            max_graph_inputs: 4,
            max_graph_blocks: 10,
        }
    }
}

/// A family plus its concrete parameter draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FamilyPlan {
    /// [`completion_tree`] of the given width.
    CompletionTree {
        /// Word width in bits.
        width: usize,
    },
    /// [`wchb_datapath`] of the given depth and width.
    WchbDatapath {
        /// Pipeline depth in stages.
        stages: usize,
        /// Datapath width in bits.
        width: usize,
    },
    /// [`dims_adder`] of the given width.
    DimsAdder {
        /// Operand width in bits.
        width: usize,
    },
    /// [`micropipeline`] of the given depth.
    Micropipeline {
        /// Control pipeline depth in stages.
        stages: usize,
    },
    /// [`pipelined_array`] of the given shape.
    PipelinedArray {
        /// Independent pipeline rows.
        rows: usize,
        /// Stages per row.
        cols: usize,
    },
    /// [`block_graph`] over the given inputs and block list.
    BlockGraph {
        /// Dual-rail input count.
        width: usize,
        /// DIMS blocks, applied in order over the signal pool.
        blocks: Vec<BlockSpec>,
    },
}

/// A reproducible generation recipe: seed plus the resolved draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The seed this plan was drawn from (also names the circuit).
    pub seed: u64,
    /// The resolved family and parameters.
    pub family: FamilyPlan,
}

impl Plan {
    /// Draws a plan from `seed` within `bounds`. Deterministic: the
    /// same seed and bounds always produce the same plan.
    pub fn from_seed(seed: u64, bounds: &GenBounds) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let family = match rng.gen_range(0u8..6) {
            0 => FamilyPlan::CompletionTree {
                width: rng.gen_range(1..=bounds.max_tree_width),
            },
            1 => FamilyPlan::WchbDatapath {
                stages: rng.gen_range(1..=bounds.max_wchb_stages),
                width: rng.gen_range(1..=bounds.max_wchb_width),
            },
            2 => FamilyPlan::DimsAdder {
                width: rng.gen_range(1..=bounds.max_adder_width),
            },
            3 => FamilyPlan::Micropipeline {
                stages: rng.gen_range(1..=bounds.max_mp_stages),
            },
            4 => FamilyPlan::PipelinedArray {
                rows: rng.gen_range(1..=bounds.max_array_rows),
                cols: rng.gen_range(1..=bounds.max_array_cols),
            },
            _ => {
                let width = rng.gen_range(1..=bounds.max_graph_inputs);
                let n = rng.gen_range(0..=bounds.max_graph_blocks);
                let blocks = (0..n)
                    .map(|_| BlockSpec {
                        func: rng.gen_range(0u8..=255),
                        lhs: rng.gen::<u64>(),
                        rhs: rng.gen::<u64>(),
                    })
                    .collect();
                FamilyPlan::BlockGraph { width, blocks }
            }
        };
        Plan { seed, family }
    }

    /// Builds the circuit this plan describes.
    pub fn build(&self) -> GeneratedCircuit {
        let name = format!("s{:016x}", self.seed);
        match &self.family {
            FamilyPlan::CompletionTree { width } => completion_tree(*width, &name),
            FamilyPlan::WchbDatapath { stages, width } => wchb_datapath(*stages, *width, &name),
            FamilyPlan::DimsAdder { width } => dims_adder(*width, &name),
            FamilyPlan::Micropipeline { stages } => micropipeline(*stages, &name),
            FamilyPlan::PipelinedArray { rows, cols } => pipelined_array(*rows, *cols, &name),
            FamilyPlan::BlockGraph { width, blocks } => block_graph(*width, blocks, &name),
        }
    }

    /// A one-line human description of the draw.
    pub fn summary(&self) -> String {
        match &self.family {
            FamilyPlan::CompletionTree { width } => format!("completion-tree w={width}"),
            FamilyPlan::WchbDatapath { stages, width } => {
                format!("wchb-datapath n={stages} w={width}")
            }
            FamilyPlan::DimsAdder { width } => format!("dims-adder w={width}"),
            FamilyPlan::Micropipeline { stages } => format!("micropipeline n={stages}"),
            FamilyPlan::PipelinedArray { rows, cols } => {
                format!("pipelined-array {rows}x{cols}")
            }
            FamilyPlan::BlockGraph { width, blocks } => {
                format!("block-graph w={width} b={}", blocks.len())
            }
        }
    }

    /// Strictly smaller plans to try when this one fails: parameters
    /// stepped down (halved toward 1 and decremented), and — for block
    /// graphs — the block list bisected and individually thinned. Every
    /// candidate is a valid plan (operand draws rebind modulo the new
    /// pool size).
    pub fn shrink_candidates(&self) -> Vec<Plan> {
        let mut out = Vec::new();
        let mut push = |family: FamilyPlan| {
            let p = Plan {
                seed: self.seed,
                family,
            };
            if p != *self && !out.contains(&p) {
                out.push(p);
            }
        };
        let steps = |v: usize| [v / 2, v - 1].into_iter().filter(|&s| s >= 1);
        match &self.family {
            FamilyPlan::CompletionTree { width } => {
                for w in steps(*width) {
                    push(FamilyPlan::CompletionTree { width: w });
                }
            }
            FamilyPlan::WchbDatapath { stages, width } => {
                for n in steps(*stages) {
                    push(FamilyPlan::WchbDatapath {
                        stages: n,
                        width: *width,
                    });
                }
                for w in steps(*width) {
                    push(FamilyPlan::WchbDatapath {
                        stages: *stages,
                        width: w,
                    });
                }
            }
            FamilyPlan::DimsAdder { width } => {
                for w in steps(*width) {
                    push(FamilyPlan::DimsAdder { width: w });
                }
            }
            FamilyPlan::Micropipeline { stages } => {
                for n in steps(*stages) {
                    push(FamilyPlan::Micropipeline { stages: n });
                }
            }
            FamilyPlan::PipelinedArray { rows, cols } => {
                for r in steps(*rows) {
                    push(FamilyPlan::PipelinedArray {
                        rows: r,
                        cols: *cols,
                    });
                }
                for c in steps(*cols) {
                    push(FamilyPlan::PipelinedArray {
                        rows: *rows,
                        cols: c,
                    });
                }
            }
            FamilyPlan::BlockGraph { width, blocks } => {
                if !blocks.is_empty() {
                    let mid = blocks.len() / 2;
                    push(FamilyPlan::BlockGraph {
                        width: *width,
                        blocks: blocks[..mid].to_vec(),
                    });
                    push(FamilyPlan::BlockGraph {
                        width: *width,
                        blocks: blocks[mid..].to_vec(),
                    });
                    for drop in 0..blocks.len() {
                        let mut thin = blocks.clone();
                        thin.remove(drop);
                        push(FamilyPlan::BlockGraph {
                            width: *width,
                            blocks: thin,
                        });
                    }
                }
                for w in steps(*width) {
                    push(FamilyPlan::BlockGraph {
                        width: w,
                        blocks: blocks.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Greedily shrinks a failing plan: repeatedly replaces it with the
/// first strictly smaller candidate that still fails, until none does.
/// `fails` must be deterministic (re-running the same check).
pub fn shrink(mut plan: Plan, fails: impl Fn(&Plan) -> bool) -> Plan {
    loop {
        let Some(smaller) = plan.shrink_candidates().into_iter().find(&fails) else {
            return plan;
        };
        plan = smaller;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_in_bounds() {
        let bounds = GenBounds::smoke();
        for seed in 0..200u64 {
            let a = Plan::from_seed(seed, &bounds);
            let b = Plan::from_seed(seed, &bounds);
            assert_eq!(a, b);
            match &a.family {
                FamilyPlan::CompletionTree { width } => {
                    assert!((1..=bounds.max_tree_width).contains(width));
                }
                FamilyPlan::WchbDatapath { stages, width } => {
                    assert!((1..=bounds.max_wchb_stages).contains(stages));
                    assert!((1..=bounds.max_wchb_width).contains(width));
                }
                FamilyPlan::DimsAdder { width } => {
                    assert!((1..=bounds.max_adder_width).contains(width));
                }
                FamilyPlan::Micropipeline { stages } => {
                    assert!((1..=bounds.max_mp_stages).contains(stages));
                }
                FamilyPlan::PipelinedArray { rows, cols } => {
                    assert!((1..=bounds.max_array_rows).contains(rows));
                    assert!((1..=bounds.max_array_cols).contains(cols));
                }
                FamilyPlan::BlockGraph { width, blocks } => {
                    assert!((1..=bounds.max_graph_inputs).contains(width));
                    assert!(blocks.len() <= bounds.max_graph_blocks);
                }
            }
        }
    }

    #[test]
    fn seeds_cover_every_family() {
        let bounds = GenBounds::smoke();
        let mut seen = [false; 6];
        for seed in 0..64u64 {
            let idx = match Plan::from_seed(seed, &bounds).family {
                FamilyPlan::CompletionTree { .. } => 0,
                FamilyPlan::WchbDatapath { .. } => 1,
                FamilyPlan::DimsAdder { .. } => 2,
                FamilyPlan::Micropipeline { .. } => 3,
                FamilyPlan::PipelinedArray { .. } => 4,
                FamilyPlan::BlockGraph { .. } => 5,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 6], "64 seeds should hit all six families");
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_valid_plans() {
        let bounds = GenBounds::smoke();
        for seed in 0..40u64 {
            let plan = Plan::from_seed(seed, &bounds);
            for cand in plan.shrink_candidates() {
                assert_ne!(cand, plan);
                // Every candidate must still build without panicking.
                let gc = cand.build();
                assert!(gc.netlist.gate_count() > 0);
            }
        }
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        // A predicate that "fails" whenever the block list has at least
        // two blocks: the shrinker must land on exactly two.
        let plan = Plan {
            seed: 7,
            family: FamilyPlan::BlockGraph {
                width: 3,
                blocks: (0..6)
                    .map(|i| BlockSpec {
                        func: i as u8,
                        lhs: i,
                        rhs: i + 1,
                    })
                    .collect(),
            },
        };
        let fails = |p: &Plan| match &p.family {
            FamilyPlan::BlockGraph { blocks, .. } => blocks.len() >= 2,
            _ => false,
        };
        let min = shrink(plan, fails);
        match &min.family {
            FamilyPlan::BlockGraph { blocks, .. } => assert_eq!(blocks.len(), 2),
            other => panic!("unexpected family {other:?}"),
        }
    }
}
