//! Parameterized netlist generation and seeded differential checking.
//!
//! The paper's central claim is that a speed-independent circuit
//! computes the **same function at every supply voltage** — energy
//! modulates throughput, never correctness. This crate turns that claim
//! into a falsifiable, fuzzable property over *generated* circuits:
//!
//! 1. [`families`] builds parameterized speed-independent designs
//!    (completion trees, WCHB datapaths, DIMS adders, micropipelines,
//!    pipelined arrays, random DIMS block graphs) from the
//!    [`emc_netlist::dualrail`] primitives, each packaged as a
//!    [`GeneratedCircuit`]: a closed netlist plus an [`env::EnvModel`]
//!    environment.
//! 2. [`plan`] maps a PRNG seed to a family + parameter draw
//!    ([`plan::Plan::from_seed`]) and shrinks failing draws to minimal
//!    reproducers ([`plan::shrink`]).
//! 3. [`differential`] runs the check: exhaustive verification
//!    (semimodularity, output persistency, dual-rail protocol), then
//!    event-driven simulation under several Vdd schedules with a seeded
//!    driver, asserting every simulated state lies in the verifier's
//!    reachable set and that the quiescent-state trace digest is
//!    **identical across schedules** — the diamond-property argument
//!    made executable.
//!
//! Because speed-independent closed circuits are semimodular, their
//! transition systems have the diamond property: from any state the
//! reachable quiescent state is unique regardless of firing order, so a
//! fixed environment seed yields the same quiescent-state sequence under
//! a nominal 1.0 V rail, a 0.3 V sub-threshold rail, or a harvested AC
//! sine. A digest mismatch is a hard counterexample to the paper's
//! thesis (or, in practice, to the generator's SI-composition rules).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod env;
pub mod families;
pub mod plan;

use std::sync::Arc;

use emc_netlist::{GateId, NetId, Netlist};
use emc_verify::Circuit;

pub use differential::{
    check_generated, run_differential, CheckOptions, CheckOutcome, DiffReport, ReachableStates,
    Schedule,
};
pub use env::{to_environment, EnvModel, NetView, SimView};
pub use families::{
    block_graph, block_graph_domains, completion_tree, dims_adder, micropipeline, pipelined_array,
    pipelined_array_domains, wchb_datapath, BlockSpec, BLOCK_FUNCTIONS,
};
pub use plan::{shrink, FamilyPlan, GenBounds, Plan};

/// A generated closed circuit: netlist, initial net overrides, and the
/// environment model that closes it. Directly consumable by the
/// verifier (via [`GeneratedCircuit::verify_circuit`]), by the
/// simulator (replay the same [`EnvModel`] against a live
/// [`emc_sim::Simulator`]), and by the campaign engine.
pub struct GeneratedCircuit {
    /// Human-readable family + parameter tag, e.g. `p-wchb4x8`.
    pub name: String,
    /// The closed netlist.
    pub netlist: Netlist,
    /// Nets forced high in the initial state (none for the current
    /// families — all start at the all-low reset state).
    pub initial: Vec<(NetId, bool)>,
    /// The environment protocol machine closing the circuit.
    pub env: Arc<dyn EnvModel>,
    /// Suggested Vdd-domain decomposition: `domains[d]` lists the gates
    /// of domain `d`. Empty for single-domain families; the `_domains`
    /// family variants fill it, and [`GeneratedCircuit::domain_assignment`]
    /// turns it into the per-gate table `emc_sim::PdesSimulator` takes.
    pub domains: Vec<Vec<GateId>>,
}

impl GeneratedCircuit {
    /// Per-gate partition assignment derived from
    /// [`GeneratedCircuit::domains`] (gates not listed — sources,
    /// mostly — land in partition 0, where the PDES builder ignores
    /// source entries anyway). Returns a single-partition table when no
    /// decomposition was generated.
    pub fn domain_assignment(&self) -> Vec<u32> {
        let mut table = vec![0u32; self.netlist.gate_count()];
        for (d, gates) in self.domains.iter().enumerate() {
            for g in gates {
                table[g.index()] = d as u32;
            }
        }
        table
    }

    /// Number of suggested Vdd domains (at least 1).
    pub fn domain_count(&self) -> usize {
        self.domains.len().max(1)
    }

    /// Packages this circuit for [`emc_verify::Verifier::verify`].
    pub fn verify_circuit(&self) -> Circuit<'static> {
        Circuit {
            name: self.name.clone(),
            netlist: self.netlist.clone(),
            initial: self.initial.clone(),
            env: to_environment(Arc::clone(&self.env)),
            stg: None,
            footprint: self.env.footprint(),
        }
    }
}
