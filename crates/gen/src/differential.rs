//! Seeded differential checking: verifier vs. simulator, across Vdd
//! schedules.
//!
//! The check exploits the semimodularity of speed-independent circuits.
//! A semimodular transition system has the diamond property, so from any
//! state the quiescent state it settles to is *unique* — independent of
//! gate delays, and therefore of the supply voltage shaping those
//! delays. Driving the simulator with one environment action at a time
//! (chosen by a seeded PRNG from the enabled set *at quiescence*) then
//! yields, for a fixed driver seed, the **same** sequence of chosen
//! actions and quiescent states under every Vdd schedule. The FNV-1a
//! digest of that sequence is the cross-schedule differential oracle:
//! equal digests are the paper's thesis ("energy modulates throughput,
//! not function"); a mismatch is a concrete counterexample.
//!
//! Independently, every state the simulator passes through — including
//! transient, non-quiescent ones — must appear in the verifier's
//! exhaustively explored reachable set, because applying one
//! environment action at quiescence is a particular interleaving the
//! explorer also covers. [`ReachableStates`] holds that set projected
//! to net values; [`run_differential`] asserts membership after every
//! fired event when the set is available.

use std::collections::HashSet;
use std::sync::Arc;

use emc_device::DeviceModel;
use emc_netlist::{NetId, Netlist};
use emc_prng::{Rng, StdRng};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Hertz, Seconds, Waveform};
use emc_verify::{Explorer, State, Verifier};

use crate::env::{to_environment, SimView};
use crate::GeneratedCircuit;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Packs per-net boolean values into words, one bit per net index —
/// the common projection of verifier states and simulator snapshots.
fn project(nl: &Netlist, value: impl Fn(NetId) -> bool) -> Box<[u64]> {
    let mut words = vec![0u64; nl.net_count().div_ceil(64)];
    for n in nl.iter_nets() {
        if value(n) {
            words[n.index() / 64] |= 1 << (n.index() % 64);
        }
    }
    words.into_boxed_slice()
}

/// The verifier's reachable set, projected to net values (the level
/// gates of the generated families carry no hidden state, so the
/// projection loses nothing the simulator can observe).
pub struct ReachableStates {
    projections: HashSet<Box<[u64]>>,
    /// Distinct full states visited.
    pub states: usize,
    /// `false` if the walk hit `cap` before exhausting the state space.
    pub exhaustive: bool,
}

impl ReachableStates {
    /// Depth-first reachability over the closed circuit–environment
    /// system, via the verifier's own [`Explorer`] semantics. Caps at
    /// `cap` distinct states.
    pub fn compute(gc: &GeneratedCircuit, cap: usize) -> Self {
        let env = to_environment(Arc::clone(&gc.env));
        let explorer = Explorer::new(&gc.netlist, &env, &gc.initial, cap);
        let mut visited: HashSet<State> = HashSet::new();
        let mut projections: HashSet<Box<[u64]>> = HashSet::new();
        let initial = explorer.initial_state();
        visited.insert(initial.clone());
        let mut frontier = vec![initial];
        let mut exhaustive = true;
        while let Some(s) = frontier.pop() {
            projections.insert(project(&gc.netlist, |n| s.value(n)));
            let internal = explorer.internal_enabled(&s);
            let quiescent = internal.is_empty();
            let env_ts = explorer.env_enabled(&s, quiescent);
            for t in internal.iter().chain(env_ts.iter()) {
                let (next, _overruns) = explorer.apply(&s, t);
                if visited.contains(&next) {
                    continue;
                }
                if visited.len() >= cap {
                    exhaustive = false;
                    continue;
                }
                visited.insert(next.clone());
                frontier.push(next);
            }
        }
        ReachableStates {
            projections,
            states: visited.len(),
            exhaustive,
        }
    }

    /// Whether a net-value projection is a reachable state's.
    pub fn contains(&self, projection: &[u64]) -> bool {
        self.projections.contains(projection)
    }
}

/// A supply-voltage schedule for the differential sweep: the same
/// circuit and driver seed must produce identical digests under all of
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Nominal constant 1.0 V.
    Nominal,
    /// Sub-threshold constant 0.3 V — delays grow by orders of
    /// magnitude, outcomes must not.
    SubThreshold,
    /// A harvested-style rectified AC rail: 1 MHz sine swinging
    /// 0.3–0.9 V, sampled finely enough that every event sees a fresh
    /// voltage.
    AcSine,
}

impl Schedule {
    /// All schedules, in sweep order.
    pub const ALL: [Schedule; 3] = [Schedule::Nominal, Schedule::SubThreshold, Schedule::AcSine];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Nominal => "nominal-1.0V",
            Schedule::SubThreshold => "subthreshold-0.3V",
            Schedule::AcSine => "ac-sine-0.3..0.9V",
        }
    }

    /// The supply this schedule puts on the single power domain.
    pub fn supply(&self) -> SupplyKind {
        match self {
            Schedule::Nominal => SupplyKind::ideal(Waveform::constant(1.0)),
            Schedule::SubThreshold => SupplyKind::ideal(Waveform::constant(0.3)),
            Schedule::AcSine => SupplyKind::ideal_with_resolution(
                Waveform::sine(0.6, 0.3, Hertz(1.0e6), 0.0).clamped(0.3, 0.9),
                Seconds(1.0e-6 / 64.0),
            ),
        }
    }
}

/// The outcome of one schedule's differential run.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The schedule simulated.
    pub schedule: Schedule,
    /// Environment actions applied before quiescence or the round
    /// budget ended the run.
    pub rounds: usize,
    /// Total simulator events fired.
    pub fired: u64,
    /// FNV-1a digest of the quiescent-state/action trace.
    pub digest: u64,
    /// Hazard count reported by the simulator (a semimodular circuit
    /// driven at quiescence must report zero).
    pub hazards: usize,
    /// The first soundness violation observed, if any: a simulated
    /// state outside the verifier's reachable set, or a settle that
    /// exceeded the event budget.
    pub violation: Option<String>,
}

fn settle(
    sim: &mut Simulator,
    reachable: Option<&ReachableStates>,
    fired: &mut u64,
    budget: u64,
) -> Option<String> {
    let mut spent = 0u64;
    while sim.step().is_some() {
        *fired += 1;
        spent += 1;
        if let Some(reach) = reachable {
            let proj = project(sim.netlist(), |n| sim.value(n));
            if !reach.contains(&proj) {
                let nl = sim.netlist();
                let high: Vec<&str> = nl
                    .iter_nets()
                    .filter(|&n| sim.value(n))
                    .map(|n| nl.net_name(n))
                    .collect();
                return Some(format!(
                    "simulated state outside verifier reachable set (high nets: {})",
                    high.join(", ")
                ));
            }
        }
        if spent > budget {
            return Some(format!("did not settle within {budget} events"));
        }
    }
    None
}

/// Runs one seeded differential simulation of `gc` under `schedule`:
/// settle, then up to `rounds` environment actions each chosen by the
/// `driver_seed` PRNG from the enabled set at quiescence. Returns the
/// trace digest; when `reachable` is given (exhaustive exploration),
/// additionally asserts every intermediate simulator state is
/// verifier-reachable.
pub fn run_differential(
    gc: &GeneratedCircuit,
    schedule: Schedule,
    driver_seed: u64,
    rounds: usize,
    reachable: Option<&ReachableStates>,
) -> DiffReport {
    let mut sim = Simulator::new(gc.netlist.clone(), DeviceModel::umc90());
    let vdd = sim.add_domain("vdd", schedule.supply());
    sim.assign_all(vdd);
    for &(net, v) in &gc.initial {
        sim.set_initial(net, v);
    }
    sim.start();

    let budget = 10_000 + 64 * gc.netlist.net_count() as u64;
    let mut fired = 0u64;
    let mut digest = FNV_OFFSET;
    let mut violation = settle(&mut sim, reachable, &mut fired, budget);
    let mut env_state = gc.env.initial();
    let mut rng = StdRng::seed_from_u64(driver_seed);
    let mut applied = 0usize;

    while violation.is_none() && applied < rounds {
        // Fold the quiescent state the circuit settled to.
        for w in project(sim.netlist(), |n| sim.value(n)).iter() {
            digest = fnv1a_u64(digest, *w);
        }
        let mut acts = gc.env.step(env_state, &SimView(&sim));
        acts.retain(|a| sim.value(a.net) != a.value);
        if acts.is_empty() {
            break;
        }
        let a = acts[rng.gen_range(0..acts.len())].clone();
        digest = fnv1a_u64(digest, a.net.index() as u64);
        digest = fnv1a_u64(digest, u64::from(a.value));
        sim.schedule_input(a.net, sim.now(), a.value);
        env_state = a.next;
        applied += 1;
        violation = settle(&mut sim, reachable, &mut fired, budget);
    }
    // Fold the final quiescent state.
    for w in project(sim.netlist(), |n| sim.value(n)).iter() {
        digest = fnv1a_u64(digest, *w);
    }

    DiffReport {
        schedule,
        rounds: applied,
        fired,
        digest,
        hazards: sim.hazards().len(),
        violation,
    }
}

/// Knobs for [`check_generated`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// State cap for verification and reachability (membership checking
    /// is skipped when exploration caps out).
    pub state_cap: usize,
    /// Environment actions per schedule.
    pub rounds: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self {
            state_cap: 200_000,
            rounds: 12,
        }
    }
}

/// The full check's outcome for one generated circuit.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The circuit's display name.
    pub name: String,
    /// Gate count of the generated netlist.
    pub gates: usize,
    /// Net count of the generated netlist.
    pub nets: usize,
    /// Distinct states the verifier explored.
    pub verify_states: usize,
    /// Whether exploration was exhaustive (membership checked).
    pub verify_exhaustive: bool,
    /// Combined FNV-1a digest over the per-schedule trace digests
    /// (schedule-independent by construction, so this is itself a
    /// deterministic function of the plan and driver seed).
    pub digest: u64,
    /// Total simulator events fired across all schedules.
    pub fired_total: u64,
    /// `None` on success; otherwise the first failed stage's
    /// description.
    pub failure: Option<String>,
}

impl CheckOutcome {
    /// `true` when every stage passed.
    pub fn is_ok(&self) -> bool {
        self.failure.is_none()
    }

    fn fail(gc: &GeneratedCircuit, message: String) -> Self {
        CheckOutcome {
            name: gc.name.clone(),
            gates: gc.netlist.gate_count(),
            nets: gc.netlist.net_count(),
            verify_states: 0,
            verify_exhaustive: false,
            digest: 0,
            fired_total: 0,
            failure: Some(message),
        }
    }
}

/// Runs the complete pipeline over a generated circuit:
///
/// 1. structural validation ([`Netlist::validate`]);
/// 2. exhaustive verification (semimodularity, output persistency,
///    dual-rail protocol, completion coverage) — must be error-free;
/// 3. reachable-set computation (when exploration stayed under the
///    cap);
/// 4. seeded differential simulation under every [`Schedule`], with
///    per-event reachability membership and cross-schedule digest
///    equality;
/// 5. text round-trip: export → import → export must be byte-stable,
///    and the re-imported netlist must reproduce the nominal digest.
pub fn check_generated(
    gc: &GeneratedCircuit,
    driver_seed: u64,
    opts: &CheckOptions,
) -> CheckOutcome {
    let diags = gc.netlist.validate();
    if !diags.is_empty() {
        return CheckOutcome::fail(
            gc,
            format!(
                "structural validation: {} diagnostics, first: {}",
                diags.len(),
                diags[0]
            ),
        );
    }

    let report = Verifier::new()
        .with_state_cap(opts.state_cap)
        .verify(&gc.verify_circuit());
    if !report.is_clean() {
        return CheckOutcome::fail(
            gc,
            format!(
                "verifier: {} errors, rules {:?}",
                report.errors(),
                report.distinct_rules()
            ),
        );
    }

    let reachable = if report.exhaustive {
        let r = ReachableStates::compute(gc, opts.state_cap);
        r.exhaustive.then_some(r)
    } else {
        None
    };

    let mut digest = FNV_OFFSET;
    let mut fired_total = 0u64;
    let mut nominal_digest = 0u64;
    for schedule in Schedule::ALL {
        let diff = run_differential(gc, schedule, driver_seed, opts.rounds, reachable.as_ref());
        if let Some(v) = diff.violation {
            return CheckOutcome::fail(gc, format!("schedule {}: {v}", schedule.label()));
        }
        if diff.hazards != 0 {
            return CheckOutcome::fail(
                gc,
                format!("schedule {}: {} hazards", schedule.label(), diff.hazards),
            );
        }
        fired_total += diff.fired;
        if schedule == Schedule::Nominal {
            nominal_digest = diff.digest;
        } else if diff.digest != nominal_digest {
            return CheckOutcome::fail(
                gc,
                format!(
                    "digest mismatch: {} produced {:#018x}, nominal produced {:#018x}",
                    schedule.label(),
                    diff.digest,
                    nominal_digest
                ),
            );
        }
        digest = fnv1a_u64(digest, diff.digest);
    }

    let text = emc_netlist::to_text(&gc.netlist);
    let imported = match emc_netlist::from_text(&text) {
        Ok(nl) => nl,
        Err(e) => return CheckOutcome::fail(gc, format!("text import: {e}")),
    };
    if emc_netlist::to_text(&imported) != text {
        return CheckOutcome::fail(gc, "text round-trip not byte-stable".to_string());
    }
    let reimported = GeneratedCircuit {
        name: gc.name.clone(),
        netlist: imported,
        initial: gc.initial.clone(),
        env: Arc::clone(&gc.env),
        domains: gc.domains.clone(),
    };
    let rediff = run_differential(
        &reimported,
        Schedule::Nominal,
        driver_seed,
        opts.rounds,
        reachable.as_ref(),
    );
    if rediff.digest != nominal_digest {
        return CheckOutcome::fail(
            gc,
            format!(
                "re-imported netlist diverged: {:#018x} vs {:#018x}",
                rediff.digest, nominal_digest
            ),
        );
    }

    CheckOutcome {
        name: gc.name.clone(),
        gates: gc.netlist.gate_count(),
        nets: gc.netlist.net_count(),
        verify_states: report.states,
        verify_exhaustive: report.exhaustive,
        digest,
        fired_total,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvModel, NetView};
    use crate::families::{completion_tree, dims_adder, micropipeline, wchb_datapath};
    use emc_netlist::DualRail;
    use emc_verify::EnvAction;

    #[test]
    fn digests_agree_across_schedules_for_wchb() {
        let gc = wchb_datapath(2, 1, "p");
        let reach = ReachableStates::compute(&gc, 100_000);
        assert!(reach.exhaustive);
        let nominal = run_differential(&gc, Schedule::Nominal, 11, 8, Some(&reach));
        assert!(nominal.violation.is_none(), "{:?}", nominal.violation);
        assert_eq!(nominal.rounds, 8);
        for schedule in [Schedule::SubThreshold, Schedule::AcSine] {
            let d = run_differential(&gc, schedule, 11, 8, Some(&reach));
            assert!(d.violation.is_none(), "{:?}", d.violation);
            assert_eq!(d.digest, nominal.digest, "{}", schedule.label());
        }
    }

    #[test]
    fn different_driver_seeds_usually_diverge() {
        // Width 2 gives the sender a free codeword choice, so eight
        // seeds that pick differently must produce several traces.
        let gc = wchb_datapath(1, 2, "p");
        let digests: std::collections::HashSet<u64> = (0..8)
            .map(|seed| run_differential(&gc, Schedule::Nominal, seed, 8, None).digest)
            .collect();
        assert!(digests.len() > 1, "eight seeds all produced one trace");
    }

    #[test]
    fn check_passes_on_representative_families() {
        let opts = CheckOptions {
            state_cap: 100_000,
            rounds: 6,
        };
        for gc in [
            completion_tree(3, "t"),
            wchb_datapath(2, 1, "p"),
            dims_adder(1, "a"),
            micropipeline(3, "m"),
        ] {
            let out = check_generated(&gc, 42, &opts);
            assert!(out.is_ok(), "{}: {:?}", out.name, out.failure);
            assert!(out.verify_exhaustive, "{}", out.name);
            assert!(out.fired_total > 0, "{}", out.name);
        }
    }

    #[test]
    fn check_is_deterministic() {
        let gc = dims_adder(1, "a");
        let opts = CheckOptions::default();
        let a = check_generated(&gc, 9, &opts);
        let b = check_generated(&gc, 9, &opts);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.fired_total, b.fired_total);
    }

    /// A deliberately non-SI closure: toggles input rails without ever
    /// consulting the completion signal, disabling excited gates.
    struct ImpatientEnv {
        pairs: Vec<DualRail>,
    }

    impl EnvModel for ImpatientEnv {
        fn step(&self, _state: u8, view: &dyn NetView) -> Vec<EnvAction> {
            self.pairs
                .iter()
                .flat_map(|p| [p.t, p.f])
                .map(|rail| EnvAction {
                    net: rail,
                    value: !view.value(rail),
                    next: 0,
                })
                .collect()
        }
    }

    #[test]
    fn check_rejects_a_non_si_closure() {
        let gc = completion_tree(2, "t");
        let pairs = (0..2)
            .map(|i| DualRail {
                t: gc.netlist.find_net(&format!("t.w{i}.t")).unwrap(),
                f: gc.netlist.find_net(&format!("t.w{i}.f")).unwrap(),
            })
            .collect();
        let bad = GeneratedCircuit {
            name: "t-impatient".into(),
            netlist: gc.netlist.clone(),
            initial: Vec::new(),
            env: Arc::new(ImpatientEnv { pairs }),
            domains: Vec::new(),
        };
        let out = check_generated(&bad, 1, &CheckOptions::default());
        assert!(!out.is_ok(), "non-SI closure must fail");
        assert!(
            out.failure.as_deref().unwrap().starts_with("verifier"),
            "{:?}",
            out.failure
        );
    }
}
