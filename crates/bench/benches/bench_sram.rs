//! SRAM model benchmarks: access evaluation across disciplines and the
//! work-integral engine under a varying supply.

use emc_bench::harness::Criterion;
use emc_bench::{criterion_group, criterion_main};
use emc_sram::{Sram, SramConfig, TimingDiscipline};
use emc_units::{Seconds, Volts, Waveform};

fn bench_accesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("sram_access");
    let mut sram = Sram::new(SramConfig::paper_1kbit());

    g.bench_function("write_completion_0v4", |b| {
        b.iter(|| sram.write_at(Volts(0.4), 3, 0xBEEF, TimingDiscipline::Completion))
    });
    g.bench_function("read_bundled_1v", |b| {
        b.iter(|| sram.read_at(Volts(1.0), 3, TimingDiscipline::bundled_nominal()))
    });
    g.bench_function("read_replica_0v4", |b| {
        b.iter(|| sram.read_at(Volts(0.4), 3, TimingDiscipline::replica_default()))
    });
    g.finish();
}

fn bench_under_waveform(c: &mut Criterion) {
    let mut g = c.benchmark_group("sram_waveform");
    g.sample_size(20);
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.3),
        (Seconds(10e-6), 0.3),
        (Seconds(12e-6), 1.0),
    ]);
    g.bench_function("write_under_ramp", |b| {
        b.iter(|| {
            sram.write_under(
                &supply,
                Seconds(0.0),
                0,
                0xAAAA,
                Seconds(100e-9),
                Seconds(1.0),
            )
        })
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    // Construction solves the Fig. 5 calibration, the energy anchors and
    // the sensing floor — worth tracking.
    c.bench_function("sram_model_construction", |b| {
        b.iter(|| Sram::new(SramConfig::paper_1kbit()))
    });
}

fn bench_workload_replay(c: &mut Criterion) {
    use emc_prng::StdRng;
    use emc_sram::{replay, AddressPattern, MemoryWorkload};
    let mut g = c.benchmark_group("sram_workload");
    g.sample_size(20);
    let w = MemoryWorkload::generate(
        500,
        64,
        0.4,
        AddressPattern::Hotspot,
        &mut StdRng::seed_from_u64(2),
    );
    g.bench_function("replay_500_ops_completion_0v5", |b| {
        let mut sram = Sram::new(SramConfig::paper_1kbit());
        b.iter(|| {
            replay(
                &mut sram,
                &w,
                &Waveform::constant(0.5),
                TimingDiscipline::Completion,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_accesses,
    bench_under_waveform,
    bench_construction,
    bench_workload_replay
);
criterion_main!(benches);
