//! Sensor benchmarks: a full gate-level charge-to-digital conversion and
//! the reference-free sensor's measure/decode path.

use emc_bench::harness::Criterion;
use emc_bench::{criterion_group, criterion_main};
use emc_sensors::{ChargeToDigitalConverter, ReferenceFreeSensor};
use emc_units::{Farads, Volts};

fn bench_conversion(c: &mut Criterion) {
    let mut g = c.benchmark_group("charge_to_digital");
    g.sample_size(10);
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    g.bench_function("convert_0v8_full_discharge", |b| {
        b.iter(|| adc.convert(Volts(0.8)))
    });
    g.finish();
}

fn bench_reference_free(c: &mut Criterion) {
    let sensor = ReferenceFreeSensor::new(8);
    c.bench_function("reference_free_measure_decode", |b| {
        b.iter(|| sensor.measure_and_decode(Volts(0.43)))
    });
    c.bench_function("reference_free_build_with_calibration", |b| {
        b.iter(|| ReferenceFreeSensor::new(8))
    });
}

criterion_group!(benches, bench_conversion, bench_reference_free);
criterion_main!(benches);
