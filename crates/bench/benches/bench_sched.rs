//! Scheduler benchmarks: energy-token scheduling over a fork-join
//! workload, the CTMC solve, and best-response dynamics.

use emc_bench::harness::Criterion;
use emc_bench::{criterion_group, criterion_main};
use emc_petri::TaskGraph;
use emc_sched::{ConcurrencyModel, EnergyTokenScheduler, PowerGame, TaskBid};
use emc_units::{Joules, Seconds};

fn bench_token_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy_token_scheduler");
    g.sample_size(20);
    g.bench_function("fork_join_6x4_2000_ticks", |b| {
        b.iter(|| {
            EnergyTokenScheduler::run(
                TaskGraph::fork_join(6, 4, Joules(10e-6), Seconds(4.0)),
                Joules(60e-6),
                4,
                1.0,
                2_000,
                |t| {
                    if t % 10 == 0 {
                        Joules(15e-6)
                    } else {
                        Joules(1e-6)
                    }
                },
            )
        })
    });
    g.finish();
}

fn bench_ctmc(c: &mut Criterion) {
    let model = ConcurrencyModel::new(8.0, 1.0, 64);
    c.bench_function("ctmc_sweep_k16_n64", |b| b.iter(|| model.sweep(16)));
}

fn bench_game(c: &mut Criterion) {
    let game = PowerGame::new(
        3.0,
        1e-4,
        (0..8)
            .map(|i| TaskBid {
                workload: 2.0 + i as f64,
                deadline: 6.0 + (i % 3) as f64,
            })
            .collect(),
    );
    c.bench_function("power_game_best_response_8_players", |b| {
        b.iter(|| game.best_response_dynamics(100))
    });
}

criterion_group!(benches, bench_token_scheduler, bench_ctmc, bench_game);
criterion_main!(benches);
