//! Petri-net engine benchmarks: firing throughput and bounded
//! reachability exploration.

use emc_bench::harness::{BatchSize, Criterion};
use emc_bench::{criterion_group, criterion_main};
use emc_petri::{reachable_markings, PetriNet, TaskGraph};
use emc_units::{Joules, Seconds};

fn ring(slots: u32) -> PetriNet {
    let mut n = PetriNet::new();
    let empty = n.add_place("empty", slots);
    let full = n.add_place("full", 0);
    let produce = n.add_transition("produce");
    let consume = n.add_transition("consume");
    n.add_input_arc(produce, empty, 1);
    n.add_output_arc(produce, full, 1);
    n.add_input_arc(consume, full, 1);
    n.add_output_arc(consume, empty, 1);
    n
}

fn bench_firing(c: &mut Criterion) {
    c.bench_function("petri_fire_10k", |b| {
        b.iter_batched(
            || ring(4),
            |mut net| {
                let ids: Vec<_> = net.transition_ids().collect();
                let mut budget = Joules(f64::INFINITY);
                for i in 0..10_000 {
                    let _ = net.fire(ids[i % 2], &mut budget);
                }
                net
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_reachability(c: &mut Criterion) {
    let net = ring(64);
    c.bench_function("petri_reachability_ring64", |b| {
        b.iter(|| reachable_markings(&net, 1_000))
    });
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("taskgraph_compile_10x10", |b| {
        b.iter(|| TaskGraph::fork_join(10, 10, Joules(1e-6), Seconds(1.0)).compile())
    });
}

criterion_group!(benches, bench_firing, bench_reachability, bench_compile);
criterion_main!(benches);
