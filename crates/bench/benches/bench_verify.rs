//! Verifier explorer benchmarks: state-graph throughput on the built-in
//! suite's heavier circuits.

use emc_bench::harness::Criterion;
use emc_bench::{criterion_group, criterion_main};
use emc_verify::builtin::builtin_suite;
use emc_verify::Explorer;

fn bench_explorer(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_explore");
    g.sample_size(10);

    g.bench_function("builtin_suite_full", |b| {
        let suite = builtin_suite(false);
        b.iter(|| {
            let mut states = 0usize;
            for circuit in &suite {
                let ex = Explorer::new(&circuit.netlist, &circuit.env, &circuit.initial, 200_000);
                states += ex.explore().states;
            }
            std::hint::black_box(states)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
