//! Simulator engine benchmarks: event throughput on free-running
//! self-timed logic, at constant and AC supplies.

use emc_async::{SelfTimedOscillator, ToggleRippleCounter};
use emc_bench::harness::{BatchSize, Criterion};
use emc_bench::{criterion_group, criterion_main};
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Hertz, Seconds, Waveform};

fn counting_rig(supply: SupplyKind) -> Simulator {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let _cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", supply);
    sim.assign_all(d);
    osc.prime(&mut sim);
    sim.start();
    sim
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_events");
    g.sample_size(20);

    g.bench_function("constant_vdd_10k_events", |b| {
        b.iter_batched(
            || counting_rig(SupplyKind::ideal(Waveform::constant(1.0))),
            |mut sim| sim.run_to_quiescence(10_000),
            BatchSize::SmallInput,
        )
    });

    g.bench_function("ac_vdd_2k_events", |b| {
        b.iter_batched(
            || {
                counting_rig(SupplyKind::ideal_with_resolution(
                    Waveform::sine(0.4, 0.2, Hertz(1e6), 0.0).clamped(0.0, 2.0),
                    Seconds(1e-6 / 64.0),
                ))
            },
            |mut sim| sim.run_to_quiescence(2_000),
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

fn bench_netlist_build(c: &mut Criterion) {
    c.bench_function("netlist_build_32bit_counter", |b| {
        b.iter(|| {
            let mut nl = Netlist::new();
            let osc = SelfTimedOscillator::build(&mut nl, "osc");
            let cnt = ToggleRippleCounter::build(&mut nl, 32, osc.output(), "cnt");
            std::hint::black_box((nl.gate_count(), cnt.width()))
        })
    });
}

fn bench_dims_adder(c: &mut Criterion) {
    use emc_async::DualRailAdder;
    let mut g = c.benchmark_group("dims_adder");
    g.sample_size(20);
    g.bench_function("add_8bit_at_0v5", |b| {
        b.iter_batched(
            || {
                let mut nl = Netlist::new();
                let adder = DualRailAdder::build(&mut nl, 8, "add");
                let mut sim = Simulator::new(nl, DeviceModel::umc90());
                let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.5)));
                sim.assign_all(d);
                sim.start();
                sim.run_to_quiescence(100_000);
                (sim, adder)
            },
            |(mut sim, adder)| {
                let deadline = Seconds(sim.now().0 + 1.0);
                adder.add(&mut sim, 137, 85, deadline)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sta(c: &mut Criterion) {
    use emc_sim::longest_path;
    use emc_units::Volts;
    // A wide-and-deep random-ish combinational block.
    let mut nl = Netlist::new();
    let mut layer: Vec<_> = (0..16).map(|i| nl.input(&format!("in{i}"))).collect();
    for d in 0..12 {
        layer = (0..16)
            .map(|i| {
                nl.gate(
                    emc_netlist::GateKind::Nand,
                    &[layer[i], layer[(i + 1) % 16]],
                    &format!("g{d}_{i}"),
                )
            })
            .collect();
    }
    for &n in &layer {
        nl.mark_output(n);
    }
    let device = DeviceModel::umc90();
    c.bench_function("sta_192_gates", |b| {
        b.iter(|| longest_path(&nl, &device, Volts(0.5)))
    });
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_netlist_build,
    bench_dims_adder,
    bench_sta
);
criterion_main!(benches);
