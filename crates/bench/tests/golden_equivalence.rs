//! Golden-equivalence suite for the hot-kernel rewrite: the figure
//! rigs' `Trace::digest` values and `emc-lint --json` bytes are pinned
//! here, and every simulator rig is run through the campaign engine at
//! 1, 2 and 8 worker threads — so an event reordered, a delay nudged,
//! or a scheduling-dependent seed mixup in *any* kernel change fails
//! this suite even when the end results still look plausible.
//!
//! If a deliberate model change moves a constant, regenerate with
//! `cargo test -p emc-bench --test golden_equivalence -- --ignored --nocapture`
//! and update it alongside the change that justified it.

use std::process::Command;

use emc_async::{DualRailAdder, SelfTimedOscillator, ToggleRippleCounter};
use emc_device::DeviceModel;
use emc_netlist::{GateKind, Netlist};
use emc_power::chain::ac_supply;
use emc_prng::{Rng, StdRng};
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Hertz, Seconds, Volts, Waveform};

/// Fig. 4 rig (2-bit self-timed counter, AC 200 mV ± 100 mV at 1 MHz),
/// 10 supply periods.
const FIG04_DIGEST: u64 = 0xb3b7_d73d_66fa_a96b;

/// Fig. 6-style handshake rig: one four-phase addition on the 8-bit
/// DIMS dual-rail adder at a constant 0.5 V.
const FIG06_HANDSHAKE_DIGEST: u64 = 0xe9cb_a956_e39a_352c;

/// Fig. 7-style rig: 4-bit counter under the time-varying supply
/// 0.45 V ± 0.25 V at 2 MHz, 8 supply periods.
const FIG07_VARYING_VDD_DIGEST: u64 = 0x9dfd_9daf_8a9e_e8c1;

/// Seeded ring-oscillator bursts (campaign seed 0xE4C, runs 0..3): the
/// seed-consuming workload, one digest per run.
const SEEDED_RING_DIGESTS: [u64; 3] = [
    0x9281_77d7_5d32_afc4,
    0xd841_d98e_9882_9341,
    0xd34e_1b7e_db61_923c,
];

/// FNV-1a of `emc-lint --json --smoke` stdout bytes.
const LINT_JSON_DIGEST: u64 = 0x4b94_c385_f659_1c4e;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fig04_digest() -> u64 {
    let freq = Hertz(1e6);
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 2, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let supply = ac_supply(Volts(0.2), Volts(0.1), freq);
    let d = sim.add_domain(
        "ac",
        SupplyKind::ideal_with_resolution(supply, Seconds(freq.period().0 / 128.0)),
    );
    sim.assign_all(d);
    counter.watch(&mut sim);
    sim.watch(osc.output());
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(10.0 * freq.period().0));
    assert!(!sim.trace().is_empty(), "fig04 rig must run");
    sim.trace().digest()
}

fn fig06_handshake_digest() -> u64 {
    let mut nl = Netlist::new();
    let adder = DualRailAdder::build(&mut nl, 8, "add");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.5)));
    sim.assign_all(d);
    sim.watch(adder.done());
    sim.watch(adder.carry_out().t);
    sim.watch(adder.carry_out().f);
    sim.start();
    sim.run_to_quiescence(100_000);
    let deadline = Seconds(sim.now().0 + 1.0);
    let sum = adder.add(&mut sim, 137, 85, deadline);
    assert_eq!(sum, Some(222), "the adder must complete its handshake");
    sim.run_to_quiescence(100_000);
    assert!(!sim.trace().is_empty(), "fig06 rig must run");
    sim.trace().digest()
}

fn fig07_varying_vdd_digest() -> u64 {
    let freq = Hertz(2e6);
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 4, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let supply = Waveform::sine(0.45, 0.25, freq, 0.0).clamped(0.0, 2.0);
    let d = sim.add_domain(
        "vdd",
        SupplyKind::ideal_with_resolution(supply, Seconds(freq.period().0 / 96.0)),
    );
    sim.assign_all(d);
    counter.watch(&mut sim);
    sim.watch(osc.output());
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(8.0 * freq.period().0));
    assert!(!sim.trace().is_empty(), "fig07 rig must run");
    sim.trace().digest()
}

/// The seed-consuming campaign worker: a ring oscillator perturbed by a
/// seed-derived burst of enable toggles (the shape the campaign
/// determinism suite pins).
fn seeded_ring_worker(_job: &u64, ctx: &RunContext) -> RunReport {
    let mut nl = Netlist::new();
    let en = nl.input("en");
    let g1 = nl.gate(GateKind::Nand, &[en, en], "g1");
    let g2 = nl.gate(GateKind::Inv, &[g1], "g2");
    let g3 = nl.gate(GateKind::Inv, &[g2], "g3");
    nl.connect_feedback(g1, g3);
    nl.mark_output(g3);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.6)));
    sim.assign_all(d);
    sim.set_initial(g1, true);
    sim.set_initial(g3, true);
    sim.watch(g3);
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut t = 0.0;
    let mut level = true;
    for _ in 0..8 {
        sim.schedule_input(en, Seconds(t), level);
        t += rng.gen_range(1e-9..10e-9);
        level = !level;
    }
    sim.schedule_input(en, Seconds(t), true);
    sim.start();
    let stats = sim.run_until(Seconds(t + 40e-9));
    RunReport::from_sim(&sim, ctx, stats, vec![stats.fired as f64])
}

/// Runs `digest_fn` as identical campaign jobs at every thread count and
/// asserts each run reproduces `expected`.
fn assert_rig_digest_at_all_thread_counts(name: &str, expected: u64, digest_fn: fn() -> u64) {
    for threads in THREAD_COUNTS {
        let jobs = [(); 2];
        let cfg = CampaignConfig::new(1).threads(threads);
        let report = run_campaign(&jobs, &cfg, |_, ctx| {
            RunReport::from_values(ctx, vec![f64::from_bits(digest_fn())])
        });
        for run in &report.runs {
            let got = run.values[0].to_bits();
            assert_eq!(
                got, expected,
                "{name} digest moved at {threads} thread(s): got {got:#018x}. If a \
                 model change makes this intentional, regenerate with `cargo test -p \
                 emc-bench --test golden_equivalence -- --ignored --nocapture`."
            );
        }
    }
}

#[test]
fn fig04_trace_digest_pinned_at_all_thread_counts() {
    assert_rig_digest_at_all_thread_counts("fig04", FIG04_DIGEST, fig04_digest);
}

#[test]
fn fig06_handshake_trace_digest_pinned_at_all_thread_counts() {
    assert_rig_digest_at_all_thread_counts(
        "fig06-handshake",
        FIG06_HANDSHAKE_DIGEST,
        fig06_handshake_digest,
    );
}

#[test]
fn fig07_varying_vdd_trace_digest_pinned_at_all_thread_counts() {
    assert_rig_digest_at_all_thread_counts(
        "fig07-varying-vdd",
        FIG07_VARYING_VDD_DIGEST,
        fig07_varying_vdd_digest,
    );
}

#[test]
fn seeded_ring_digests_pinned_across_seeds_and_thread_counts() {
    let jobs = [0u64; 3];
    for threads in THREAD_COUNTS {
        let cfg = CampaignConfig::new(0xE4C).threads(threads);
        let report = run_campaign(&jobs, &cfg, seeded_ring_worker);
        for (i, run) in report.runs.iter().enumerate() {
            assert_eq!(
                run.trace_digest, SEEDED_RING_DIGESTS[i],
                "seeded ring run {i} digest moved at {threads} thread(s): got \
                 {:#018x}",
                run.trace_digest
            );
        }
        // Distinct seeds must produce distinct traces, or the seeds
        // never reached the runs and the pins above are vacuous.
        assert_ne!(report.runs[0].trace_digest, report.runs[1].trace_digest);
    }
}

fn lint_json_bytes(threads: usize) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_emc-lint"))
        .args(["--json", "--smoke", "--threads", &threads.to_string()])
        .output()
        .expect("emc-lint runs");
    assert!(
        out.status.success(),
        "emc-lint failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn emc_lint_json_bytes_identical_across_thread_counts_and_pinned() {
    let reference = lint_json_bytes(1);
    assert_eq!(
        fnv64(&reference),
        LINT_JSON_DIGEST,
        "emc-lint --json bytes moved: got {:#018x}",
        fnv64(&reference)
    );
    for threads in [2usize, 8] {
        assert_eq!(
            lint_json_bytes(threads),
            reference,
            "emc-lint --json bytes differ at {threads} thread(s)"
        );
    }
    // Seed must not leak into the machine output either.
    let other_seed = Command::new(env!("CARGO_BIN_EXE_emc-lint"))
        .args(["--json", "--smoke", "--seed", "7"])
        .output()
        .expect("emc-lint runs");
    assert_eq!(
        other_seed.stdout, reference,
        "seed leaked into --json bytes"
    );
}

/// Regeneration helper: prints every golden constant in this file.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_golden_constants() {
    println!("FIG04_DIGEST: {:#018x}", fig04_digest());
    println!("FIG06_HANDSHAKE_DIGEST: {:#018x}", fig06_handshake_digest());
    println!(
        "FIG07_VARYING_VDD_DIGEST: {:#018x}",
        fig07_varying_vdd_digest()
    );
    let jobs = [0u64; 3];
    let report = run_campaign(
        &jobs,
        &CampaignConfig::new(0xE4C).threads(1),
        seeded_ring_worker,
    );
    for (i, run) in report.runs.iter().enumerate() {
        println!("SEEDED_RING_DIGESTS[{i}]: {:#018x}", run.trace_digest);
    }
    println!("LINT_JSON_DIGEST: {:#018x}", fnv64(&lint_json_bytes(1)));
}
