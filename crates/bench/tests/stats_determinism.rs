//! The `emc-stats` determinism contract: exported telemetry is a pure
//! function of scenario + seed, so stdout is **byte-identical at any
//! `--threads` count** and across repeated invocations.

use std::process::Command;

fn stats(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_emc-stats"))
        .args(args)
        .output()
        .expect("run emc-stats");
    assert!(
        out.status.success(),
        "emc-stats {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("emc-stats output is UTF-8")
}

#[test]
fn campaign_jsonl_is_thread_count_invariant() {
    let at = |threads: &'static str| {
        stats(&[
            "--smoke",
            "--json",
            "--scenario",
            "campaign",
            "--threads",
            threads,
        ])
    };
    let t1 = at("1");
    let t2 = at("2");
    let t8 = at("8");
    assert!(!t1.is_empty());
    assert_eq!(
        t1, t2,
        "campaign telemetry diverged between 1 and 2 threads"
    );
    assert_eq!(
        t1, t8,
        "campaign telemetry diverged between 1 and 8 threads"
    );
}

#[test]
fn full_scenario_jsonl_is_reproducible_across_threads() {
    let a = stats(&["--smoke", "--json", "--threads", "1"]);
    let b = stats(&["--smoke", "--json", "--threads", "2"]);
    assert_eq!(a, b, "merged all-scenario telemetry is thread-dependent");
    // Every subsystem contributed to the merged bundle.
    for needle in [
        "\"id\":\"sim.events_fired\"",
        "\"id\":\"verify.states_popped\"",
        "\"id\":\"sram.reads\"",
        "\"id\":\"sensor.conversions\"",
        "\"account\":\"chain/harvested\"",
        "\"type\":\"span\"",
    ] {
        assert!(a.contains(needle), "JSONL lacks {needle}");
    }
}

#[test]
fn seed_changes_move_the_output() {
    let a = stats(&["--smoke", "--json", "--scenario", "sram", "--seed", "1"]);
    let b = stats(&["--smoke", "--json", "--scenario", "sram", "--seed", "2"]);
    assert_ne!(a, b, "seed is not reaching the sram workload");
}

#[test]
fn chrome_trace_and_prometheus_render() {
    let trace = stats(&["--smoke", "--chrome-trace", "--scenario", "sram"]);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with('}'));
    assert!(trace.contains("\"cat\":\"sram\""));

    let prom = stats(&["--smoke", "--prom", "--scenario", "sim"]);
    assert!(prom.contains("# TYPE emc_sim_events_fired counter"));
    assert!(prom.contains("emc_sim_queue_depth_bucket"));
}
