//! Golden digests for the alternative-logic-family figures: the JSON
//! emitted by `fig_altlogic_energy` and `ablation_razor_replay` must be
//! byte-identical at 1, 2 and 8 worker threads, and the smoke-mode
//! bytes are pinned so a model change that moves any curve fails here
//! even when the new numbers still look plausible.
//!
//! If a deliberate model change moves a constant, regenerate with
//! `cargo test -p emc-bench --test altlogic_golden -- --ignored --nocapture`
//! and update it alongside the change that justified it.

use std::path::PathBuf;
use std::process::Command;

/// FNV-1a of `target/figures/fig_altlogic_energy.json` after a
/// `--smoke` run.
const FIG_ENERGY_DIGEST: u64 = 0x3b64_435e_d32c_df85;

/// FNV-1a of `target/figures/fig_altlogic_ramp.json` after a `--smoke`
/// run.
const FIG_RAMP_DIGEST: u64 = 0x2591_1c68_4288_d1d7;

/// FNV-1a of `target/figures/ablation_razor_replay.json` after a
/// `--smoke` run.
const ABLATION_REPLAY_DIGEST: u64 = 0xa396_c30f_5f1b_ddc6;

/// FNV-1a of `target/figures/ablation_razor_dvs.json` after a
/// `--smoke` run.
const ABLATION_DVS_DIGEST: u64 = 0x5937_deb8_b28a_c333;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn figures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

/// Runs `bin` with `--smoke --threads N` and returns the bytes of every
/// requested series JSON it saved.
fn run_and_read(bin: &str, threads: usize, series: &[&str]) -> Vec<Vec<u8>> {
    let out = Command::new(bin)
        .args(["--smoke", "--threads", &threads.to_string()])
        .output()
        .expect("figure binary runs");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    series
        .iter()
        .map(|id| {
            std::fs::read(figures_dir().join(format!("{id}.json")))
                .unwrap_or_else(|e| panic!("read {id}.json: {e}"))
        })
        .collect()
}

fn assert_identical_and_pinned(bin: &str, series: &[&str], pins: &[u64]) {
    let reference = run_and_read(bin, 1, series);
    for (i, id) in series.iter().enumerate() {
        let got = fnv64(&reference[i]);
        assert_eq!(
            got, pins[i],
            "{id}.json bytes moved: got {got:#018x}. If a model change makes \
             this intentional, regenerate with `cargo test -p emc-bench --test \
             altlogic_golden -- --ignored --nocapture`."
        );
    }
    for threads in [2usize, 8] {
        let again = run_and_read(bin, threads, series);
        for (i, id) in series.iter().enumerate() {
            assert_eq!(
                again[i], reference[i],
                "{id}.json differs at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn fig_altlogic_energy_json_identical_across_threads_and_pinned() {
    assert_identical_and_pinned(
        env!("CARGO_BIN_EXE_fig_altlogic_energy"),
        &["fig_altlogic_energy", "fig_altlogic_ramp"],
        &[FIG_ENERGY_DIGEST, FIG_RAMP_DIGEST],
    );
}

#[test]
fn ablation_razor_replay_json_identical_across_threads_and_pinned() {
    assert_identical_and_pinned(
        env!("CARGO_BIN_EXE_ablation_razor_replay"),
        &["ablation_razor_replay", "ablation_razor_dvs"],
        &[ABLATION_REPLAY_DIGEST, ABLATION_DVS_DIGEST],
    );
}

/// Regeneration helper: prints every golden constant in this file.
#[test]
#[ignore = "regeneration helper, run with --ignored --nocapture"]
fn print_golden_constants() {
    let fig = run_and_read(
        env!("CARGO_BIN_EXE_fig_altlogic_energy"),
        1,
        &["fig_altlogic_energy", "fig_altlogic_ramp"],
    );
    println!("FIG_ENERGY_DIGEST: {:#018x}", fnv64(&fig[0]));
    println!("FIG_RAMP_DIGEST: {:#018x}", fnv64(&fig[1]));
    let abl = run_and_read(
        env!("CARGO_BIN_EXE_ablation_razor_replay"),
        1,
        &["ablation_razor_replay", "ablation_razor_dvs"],
    );
    println!("ABLATION_REPLAY_DIGEST: {:#018x}", fnv64(&abl[0]));
    println!("ABLATION_DVS_DIGEST: {:#018x}", fnv64(&abl[1]));
}
