//! Micro-probe for the PDES benchmark rig: builds an R×C WCHB array and
//! times the build, the sequential-oracle setup, and the driven run in
//! isolation, so build-path and event-kernel regressions can be told
//! apart without a full `emc-perf` sweep. (This probe is how the
//! quadratic `Netlist::mark_output` was isolated: build time at
//! 512×500 was 156 s before the fix, ~1 s after, while the event
//! kernel was healthy all along.)
//!
//! Usage: `pdes_probe [rows] [cols] [parts] [ticks]`

use emc_bench::{drive_array, pdes_array, pdes_sequential};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |i: usize, default: usize| -> usize {
        args.get(i).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| panic!("bad argument '{s}'"))
        })
    };
    let rows = arg(1, 64);
    let cols = arg(2, 100);
    let parts = arg(3, 8);
    let ticks = arg(4, 6);
    let t0 = Instant::now();
    let rig = pdes_array(rows, cols, parts);
    println!(
        "build: {} gates in {:?}",
        rig.netlist.gate_count(),
        t0.elapsed()
    );
    let t0 = Instant::now();
    let mut sim = pdes_sequential(&rig);
    println!("seq setup: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let fired = drive_array(&mut sim, &rig, ticks);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "seq drive: {fired} events in {secs:.3} s ({:.0} ev/s)",
        fired as f64 / secs
    );
}
