//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Every `fig*`/`ablation*` binary in `src/bin/` regenerates one figure
//! or result of *Energy-modulated computing* (see `DESIGN.md` §3 for the
//! index). Each prints a human-readable table **and** dumps the same
//! series as JSON under `target/figures/`, so EXPERIMENTS.md numbers can
//! be re-derived mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod harness;
pub mod pdes_rig;

pub use campaign::{campaign_series, print_campaign_summary, CampaignArgs};
pub use pdes_rig::{
    drive_array, pdes_array, pdes_parallel, pdes_sequential, pdes_specs, pdes_watched, DriveSim,
    PdesArray, PDES_STEP, PDES_VOLTS,
};

use std::fs;
use std::path::PathBuf;

/// A figure data series: named columns and numeric rows.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment id, e.g. `"fig05"`.
    pub id: String,
    /// What the series shows.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints the series as an aligned table.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(12)).collect();
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(v, w)| format!("{:>w$}", format_number(*v)))
                .collect();
            println!("  {}", cells.join("  "));
        }
    }

    /// Serialises the series as pretty-printed JSON. Hand-rolled (the
    /// workspace builds offline with no registry access): the format is
    /// fixed — string id/title, string columns, `f64` rows — so a full
    /// serialisation framework buys nothing here.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        let cols: Vec<String> = self.columns.iter().map(|c| json_string(c)).collect();
        out.push_str(&format!("  \"columns\": [{}],\n", cols.join(", ")));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|v| json_number(*v)).collect();
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!("    [{}]{}\n", cells.join(", "), sep));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Writes the series as JSON to `target/figures/<id>.json` and
    /// prints + returns the path.
    ///
    /// # Panics
    ///
    /// Panics if the directory or file cannot be written (benches run in
    /// a writable workspace by construction).
    pub fn save(&self) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
        fs::create_dir_all(&dir).expect("create target/figures");
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json()).expect("write series JSON");
        println!("  [saved {}]", path.display());
        path
    }

    /// Prints and saves in one call.
    pub fn emit(&self) {
        self.print();
        self.save();
        println!();
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
/// Shared by every hand-rolled JSON writer in this crate (the workspace
/// builds offline, with no serialisation framework).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON numbers: shortest round-trippable form; non-finite values map to
/// `null` (JSON has no NaN/Infinity).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral f64 prints "1", which JSON would re-read
        // as an integer; keep the float-ness explicit.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Compact number formatting for table cells: engineering-ish without
/// trailing noise.
pub fn format_number(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if !v.is_finite() {
        format!("{v}")
    } else {
        let a = v.abs();
        if !(1e-3..1e6).contains(&a) {
            format!("{v:.3e}")
        } else if a >= 100.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.4}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_round_trip() {
        let mut s = Series::new("test", "a test", &["x", "y"]);
        s.push(vec![1.0, 2.0]);
        s.push(vec![3.0, 4.0]);
        assert_eq!(s.rows.len(), 2);
        let path = s.save();
        let text = fs::read_to_string(path).unwrap();
        assert!(text.contains("\"id\": \"test\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut s = Series::new("t", "t", &["x"]);
        s.push(vec![1.0, 2.0]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(1.5), "1.5000");
        assert_eq!(format_number(123.45), "123.5");
        assert_eq!(format_number(5.8e-12), "5.800e-12");
    }
}
