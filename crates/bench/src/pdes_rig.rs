//! The shared PDES benchmark workload: an R×C array of independent
//! dual-rail WCHB pipeline rows, split into row-cyclic Vdd domains,
//! plus the deterministic reactive driver that pumps tokens through
//! every row at a fixed cadence.
//!
//! `emc-perf` times this rig three ways — sequentially on one
//! [`Simulator`] and in parallel on a [`PdesSimulator`] at several
//! thread counts — and asserts the canonical trace digests agree;
//! `emc-stats` runs the same rig with observability enabled to export
//! the `sim.pdes.*` telemetry.
//!
//! The driver is *stateless and symmetric*: at each tick it reads the
//! row's protocol nets from whichever engine it is driving and injects
//! the enabled 4-phase actions (raise one data rail chosen by
//! `(tick ^ row) & 1`, lower it on acknowledge, mirror the sink
//! acknowledge off output validity). Both engines therefore receive
//! bit-identical stimulus exactly when they agree on every net value at
//! every tick — which the digest comparison then certifies end-to-end.

use emc_async::DualRailPipeline;
use emc_device::DeviceModel;
use emc_netlist::{GateKind, NetId, Netlist};
use emc_sim::{PdesPartitionSpec, PdesSimulator, Simulator, SupplyKind};
use emc_units::{Seconds, Waveform};

/// Domain rail voltages, cycled over partitions: a genuinely
/// multi-voltage split, so cross-domain delays differ.
pub const PDES_VOLTS: [f64; 3] = [1.0, 0.8, 0.6];

/// Driver cadence. Generous enough that even a 500-stage row at the
/// lowest rail voltage is quiescent when the driver samples it, so
/// every tick advances each row by one protocol phase.
pub const PDES_STEP: f64 = 1e-3;

/// The benchmark netlist plus everything needed to drive and split it.
pub struct PdesArray {
    /// The whole array in one netlist.
    pub netlist: Netlist,
    /// Per-row pipeline handles (inputs, acknowledges, outputs).
    pub rows: Vec<DualRailPipeline>,
    /// Per-gate partition assignment: row `r` → partition `r % parts`.
    pub assignment: Vec<u32>,
    /// Partition count (clamped to the row count).
    pub parts: usize,
}

/// Builds `rows` independent 1-bit, `cols`-stage WCHB pipeline rows and
/// assigns row `r` to partition `r % parts` — the same decomposition as
/// `emc_gen::pipelined_array_domains`, with the row handles retained so
/// the driver can address each row's protocol nets directly.
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0`, or `parts == 0`.
pub fn pdes_array(rows: usize, cols: usize, parts: usize) -> PdesArray {
    assert!(rows >= 1 && parts >= 1, "need at least one row and part");
    let parts = parts.min(rows);
    let mut netlist = Netlist::new();
    let mut pipes = Vec::with_capacity(rows);
    let mut assignment = Vec::new();
    for r in 0..rows {
        let p = DualRailPipeline::build(&mut netlist, cols, &format!("pd.r{r}"));
        // Gates are appended contiguously, so everything new since the
        // last row belongs to this one.
        assignment.resize(netlist.gate_count(), (r % parts) as u32);
        pipes.push(p);
    }
    PdesArray {
        netlist,
        rows: pipes,
        assignment,
        parts,
    }
}

/// One ideal-constant supply spec per partition, voltages cycled from
/// [`PDES_VOLTS`].
pub fn pdes_specs(parts: usize) -> Vec<PdesPartitionSpec> {
    (0..parts)
        .map(|d| PdesPartitionSpec {
            name: format!("vdd{d}"),
            supply: SupplyKind::ideal(Waveform::constant(PDES_VOLTS[d % PDES_VOLTS.len()])),
        })
        .collect()
}

/// The nets whose transitions enter the compared trace: each row's
/// output rails and sender acknowledge. A deliberate subset — watching
/// all nets of a million-gate array would make trace memory, not the
/// event kernel, the measured quantity.
pub fn pdes_watched(rig: &PdesArray) -> Vec<NetId> {
    rig.rows
        .iter()
        .flat_map(|p| {
            let o = p.outputs()[0];
            [o.t, o.f, p.sender_ack()]
        })
        .collect()
}

/// A started sequential oracle over the rig: same domains, same
/// per-gate assignment, same watch set as the PDES runs.
pub fn pdes_sequential(rig: &PdesArray) -> Simulator {
    let mut sim = Simulator::new(rig.netlist.clone(), DeviceModel::umc90());
    let doms: Vec<_> = pdes_specs(rig.parts)
        .iter()
        .map(|s| sim.add_domain(&s.name, s.supply.clone()))
        .collect();
    for (gid, g) in rig.netlist.iter_gates() {
        if g.kind() == GateKind::Input {
            continue;
        }
        sim.assign_domain(gid, doms[rig.assignment[gid.index()] as usize]);
    }
    for net in pdes_watched(rig) {
        sim.watch(net);
    }
    sim.start();
    sim
}

/// A started parallel simulator over the rig at `threads` worker
/// threads. `obs` enables per-partition observability before start (for
/// `emc-stats`; `emc-perf` measures with it off).
pub fn pdes_parallel(rig: &PdesArray, threads: usize, obs: bool) -> PdesSimulator {
    let mut sim = PdesSimulator::new(
        rig.netlist.clone(),
        DeviceModel::umc90(),
        &pdes_specs(rig.parts),
        &rig.assignment,
    );
    sim.set_threads(threads);
    if obs {
        sim.enable_obs();
    }
    for net in pdes_watched(rig) {
        sim.watch(net);
    }
    sim.start();
    sim
}

/// The engine surface the driver needs — implemented by both the
/// sequential and the parallel simulator so one driver serves both.
pub trait DriveSim {
    /// Current value of a net.
    fn net_value(&self, net: NetId) -> bool;
    /// Schedules an environment transition.
    fn inject(&mut self, net: NetId, time: Seconds, value: bool);
    /// Runs to `t` and returns how many events fired.
    fn advance(&mut self, t: Seconds) -> u64;
    /// Number of hazards observed so far.
    fn hazard_count(&self) -> usize;
}

impl DriveSim for Simulator {
    fn net_value(&self, net: NetId) -> bool {
        self.value(net)
    }
    fn inject(&mut self, net: NetId, time: Seconds, value: bool) {
        self.schedule_input(net, time, value);
    }
    fn advance(&mut self, t: Seconds) -> u64 {
        self.run_until(t).fired
    }
    fn hazard_count(&self) -> usize {
        self.hazards().len()
    }
}

impl DriveSim for PdesSimulator {
    fn net_value(&self, net: NetId) -> bool {
        self.value(net)
    }
    fn inject(&mut self, net: NetId, time: Seconds, value: bool) {
        self.schedule_input(net, time, value);
    }
    fn advance(&mut self, t: Seconds) -> u64 {
        self.run_until(t).fired
    }
    fn hazard_count(&self) -> usize {
        self.hazards().len()
    }
}

/// Pumps `ticks` driver rounds through every row and returns the total
/// fired-event count. Panics if the run was not hazard-free or fired
/// nothing.
pub fn drive_array(sim: &mut impl DriveSim, rig: &PdesArray, ticks: usize) -> u64 {
    let mut fired = 0u64;
    for k in 0..ticks {
        let t = Seconds(PDES_STEP * (k + 1) as f64);
        fired += sim.advance(t);
        for (r, p) in rig.rows.iter().enumerate() {
            let rail = p.inputs()[0];
            let (in_t, in_f) = (sim.net_value(rail.t), sim.net_value(rail.f));
            let ack = sim.net_value(p.sender_ack());
            // Sender: spacer + ack low → offer the next token on the
            // rail picked by (tick ^ row); valid + ack high → return to
            // spacer.
            if !in_t && !in_f && !ack {
                let net = if (k ^ r) & 1 == 1 { rail.t } else { rail.f };
                sim.inject(net, t, true);
            } else if (in_t || in_f) && ack {
                sim.inject(if in_t { rail.t } else { rail.f }, t, false);
            }
            // Receiver: mirror output completion onto the sink ack.
            let out = p.outputs()[0];
            let (ot, of) = (sim.net_value(out.t), sim.net_value(out.f));
            let sink = sim.net_value(p.sink_ack());
            if (ot ^ of) && !sink {
                sim.inject(p.sink_ack(), t, true);
            } else if !ot && !of && sink {
                sim.inject(p.sink_ack(), t, false);
            }
        }
    }
    fired += sim.advance(Seconds(PDES_STEP * (ticks + 1) as f64));
    assert_eq!(sim.hazard_count(), 0, "PDES rig run must be hazard-free");
    assert!(fired > 0, "PDES rig fired no events");
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_on_a_small_array() {
        let rig = pdes_array(4, 3, 2);
        let mut seq = pdes_sequential(&rig);
        let fired = drive_array(&mut seq, &rig, 7);
        let digest = seq.trace().canonical_digest();
        for threads in [1, 2] {
            let mut par = pdes_parallel(&rig, threads, false);
            assert_eq!(fired, drive_array(&mut par, &rig, 7));
            assert_eq!(digest, par.trace().digest());
        }
    }

    #[test]
    fn every_row_moves_tokens() {
        let rig = pdes_array(3, 2, 3);
        let mut seq = pdes_sequential(&rig);
        drive_array(&mut seq, &rig, 7);
        for p in &rig.rows {
            // 7 ticks ≈ two full 4-phase cycles: every row's output
            // must have gone valid at least once.
            let t = p.outputs()[0];
            let entries = seq
                .trace()
                .entries()
                .iter()
                .filter(|e| e.net == t.t || e.net == t.f)
                .count();
            assert!(entries > 0, "a row's output never switched");
        }
    }
}
