//! A minimal Criterion-shaped micro-benchmark harness.
//!
//! The workspace builds offline with no registry access, so the
//! `criterion` crate is not available; this module keeps the bench
//! sources unchanged except for their import line. It implements the
//! subset of the API the benches use — `bench_function`,
//! `benchmark_group`/`sample_size`/`finish`, `Bencher::iter` and
//! `Bencher::iter_batched` — and reports min / median / max wall-clock
//! per iteration on stdout.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup. Only a hint here; both variants
/// time each routine invocation individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `f` over `sample_size` calls (after one warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{name:<40}  (no samples)");
        return;
    }
    s.sort();
    let median = s[s.len() / 2];
    println!(
        "{name:<40}  min {:>10}   median {:>10}   max {:>10}   ({} samples)",
        fmt_duration(s[0]),
        fmt_duration(median),
        fmt_duration(*s.last().expect("non-empty")),
        s.len()
    );
}

/// The top-level driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 50;

impl Criterion {
    /// Runs one named benchmark with the default sample count.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Opens a named group; benchmarks in it print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A named group of benchmarks with a shared sample count.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (output is streamed, so this is a no-op).
    pub fn finish(self) {}
}

/// Mirrors `criterion_group!`: defines a function running each listed
/// benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($bench(c);)+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn iter_batched_collects_samples() {
        let mut b = Bencher::new(4);
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
