//! S5 — the §III-A design extensions: segmented completion detection
//! (pushing the low-Vdd limit into sub-threshold) and 8T cells (cutting
//! leakage), plus the corner table of \[8\].

use emc_bench::Series;
use emc_device::DeviceModel;
use emc_sram::energy::Op;
use emc_sram::{CellKind, FailureAnalysis, Sram, SramConfig};
use emc_units::Volts;

fn main() {
    let device = DeviceModel::umc90();

    // Segmentation sweep.
    let mut seg = Series::new(
        "ablation_segments",
        "completion-detection segmentation: minimum operating voltage",
        &["segments", "min_vdd_mV", "read_units_at_0v3"],
    );
    for segments in [1usize, 2, 4, 8, 16] {
        let fa = FailureAnalysis::new(64, segments, CellKind::SixT);
        let min_v = fa
            .min_operating_voltage(&device)
            .map_or(f64::NAN, |v| v.0 * 1e3);
        let sram = Sram::new(SramConfig {
            segments,
            ..SramConfig::paper_1kbit()
        });
        let units = sram
            .timing()
            .phase_inverter_units(emc_sram::Phase::BitLine, Volts(0.3));
        seg.push(vec![segments as f64, min_v, units]);
    }
    seg.emit();

    // Cell flavour comparison.
    let mut cells = Series::new(
        "ablation_cells",
        "6T vs 8T cells: leakage, area, minimum voltage",
        &[
            "cell_is_8t",
            "retention_uW_at_0v5",
            "area_factor",
            "min_vdd_mV",
        ],
    );
    for cell in [CellKind::SixT, CellKind::EightT] {
        let sram = Sram::new(SramConfig {
            cell,
            ..SramConfig::paper_1kbit()
        });
        let p =
            sram.energy_model()
                .retention_power(sram.timing(), Volts(0.5), cell.leakage_factor());
        let fa = FailureAnalysis::new(64, 1, cell);
        let min_v = fa
            .min_operating_voltage(&device)
            .map_or(f64::NAN, |v| v.0 * 1e3);
        cells.push(vec![
            matches!(cell, CellKind::EightT) as u8 as f64,
            p.0 * 1e6,
            cell.area_factor(),
            min_v,
        ]);
        let _ = sram
            .energy_model()
            .access_energy(sram.timing(), Op::Read, Volts(0.5));
    }
    cells.emit();

    // Corner table.
    let fa = FailureAnalysis::new(64, 1, CellKind::SixT);
    let mut corners = Series::new(
        "ablation_corners",
        "process corners: min Vdd and 0.3 V read latency",
        &["corner_index", "min_vdd_mV", "read_latency_0v3_ns"],
    );
    println!("corner legend:");
    for (i, row) in fa.corner_table(&device).iter().enumerate() {
        println!(
            "  {} = {} (min Vdd {:.0} mV, read @0.3 V {:.0} ns)",
            i,
            row.corner,
            row.min_vdd.0 * 1e3,
            row.read_latency_0v3 * 1e9
        );
        corners.push(vec![
            i as f64,
            row.min_vdd.0 * 1e3,
            row.read_latency_0v3 * 1e9,
        ]);
    }
    corners.emit();

    println!("Shape check: segmentation lowers the usable voltage floor (the");
    println!("§III-A suggestion of 8-bit completion segments); 8T cells cut");
    println!("retention power ~2.5x for 1.4x area; the slow-slow corner is the");
    println!("limiting one, as in the failure analysis of [8].");
}
