//! Fig. 12 — reference-free voltage measurement: the SRAM-vs-ruler race
//! transfer curve, 200 mV – 1 V operating range, ≤ 10 mV accuracy.

use emc_bench::Series;
use emc_sensors::{ReferenceFreeSensor, RingOscillatorSensor};
use emc_units::{Seconds, Volts};

fn main() {
    let sensor = ReferenceFreeSensor::new(8);
    let mut s = Series::new(
        "fig12",
        "reference-free sensor: thermometer code and decode error vs Vdd",
        &["vdd_V", "code", "decoded_V", "error_mV"],
    );
    for (v, code) in sensor.transfer_curve(33) {
        let decoded = sensor.decode(code);
        s.push(vec![
            v.0,
            code as f64,
            decoded.0,
            (decoded.0 - v.0).abs() * 1e3,
        ]);
    }
    s.emit();

    println!(
        "worst-case error over 0.2-1.0 V: {:.1} mV (paper claims 10 mV)",
        sensor.worst_case_error().0 * 1e3
    );
    println!("ruler length required: {} stages", sensor.ruler_length());

    // Contrast: the conventional ring-oscillator sensor degrades with
    // its time reference; the race sensor has no reference to degrade.
    let ring = RingOscillatorSensor::new(31, Seconds(1e-6));
    println!();
    println!("ring-oscillator baseline at 0.5 V under reference-clock error:");
    for rel in [0.0, 0.02, 0.05, 0.10] {
        println!(
            "  {:>4.0} % clock error -> {:>5.1} mV voltage error",
            rel * 100.0,
            ring.error_with_reference(Volts(0.5), rel).0 * 1e3
        );
    }
    println!();
    println!("Shape check: monotone digital transfer curve over the full");
    println!("0.2-1 V range with ≤10 mV inversion error and no analog");
    println!("references — the claims of §III-C.");
}
