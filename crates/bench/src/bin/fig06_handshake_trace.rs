//! Fig. 6 — handshake-based control of the self-timed SRAM: the phase
//! sequence of a read and of a read-before-write write, with per-phase
//! completion times at two supply voltages.

use emc_bench::Series;
use emc_sram::{Phase, Sram, SramConfig};
use emc_units::Volts;

fn trace(sram: &Sram, phases: &[Phase], vdd: Volts, id: &str, title: &str) {
    let mut s = Series::new(id, title, &["phase_index", "start_ns", "end_ns"]);
    let mut t = 0.0;
    println!("  {:>18}   start [ns]   end [ns]   (Vdd = {vdd})", "phase");
    for (i, &p) in phases.iter().enumerate() {
        let d = sram.timing().phase_latency(p, vdd).0 * 1e9;
        println!("  {:>18}   {:>9.2}   {:>8.2}", format!("{p:?}"), t, t + d);
        s.push(vec![i as f64, t, t + d]);
        t += d;
    }
    // Two completion-detection settles (bit line + write equality).
    for k in 0..2 {
        let d = sram.timing().phase_latency(Phase::Completion, vdd).0 * 1e9;
        println!(
            "  {:>18}   {:>9.2}   {:>8.2}",
            format!("Completion#{k}"),
            t,
            t + d
        );
        s.push(vec![(phases.len() + k) as f64, t, t + d]);
        t += d;
    }
    s.emit();
}

fn main() {
    let sram = Sram::new(SramConfig::paper_1kbit());
    println!("READ handshake sequence (precharge → word line → bit line → sense):");
    trace(
        &sram,
        &Phase::READ,
        Volts(1.0),
        "fig06_read_1v",
        "read handshake phases at 1 V",
    );
    trace(
        &sram,
        &Phase::READ,
        Volts(0.3),
        "fig06_read_0v3",
        "read handshake phases at 0.3 V",
    );
    println!("WRITE handshake sequence — note the paper's trick: a write");
    println!("*starts with a read* so that completion can be detected as");
    println!("equality between the bit lines and the new value:");
    trace(
        &sram,
        &Phase::WRITE,
        Volts(0.3),
        "fig06_write_0v3",
        "write (read-before-write) handshake phases at 0.3 V",
    );
    println!("Shape check: the same causal phase order at every voltage, with");
    println!("every phase stretching as Vdd falls — no clocks, no assumptions.");
}
