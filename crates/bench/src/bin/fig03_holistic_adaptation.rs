//! Fig. 3 — power-adaptive computing, the holistic view: useful work per
//! harvested joule with and without two-way adaptation.

use emc_bench::Series;
use emc_core::HolisticExperiment;
use emc_units::{Seconds, Watts};

fn main() {
    let mut s = Series::new(
        "fig03",
        "completions per harvested mJ: adaptive vs fixed rail, across income",
        &[
            "income_uW",
            "adaptive_done",
            "fixed_done",
            "adaptive_per_mJ",
            "fixed_per_mJ",
        ],
    );
    for income_uw in [10.0, 20.0, 30.0, 60.0, 120.0, 500.0] {
        let exp = HolisticExperiment {
            income: Watts(income_uw * 1e-6),
            burst_period: Seconds(50e-3),
            duration: Seconds(4.0),
        };
        let adaptive = exp.run(true);
        let fixed = exp.run(false);
        s.push(vec![
            income_uw,
            adaptive.completed as f64,
            fixed.completed as f64,
            adaptive.completions_per_joule * 1e-3,
            fixed.completions_per_joule * 1e-3,
        ]);
    }
    s.emit();
    println!("Shape check: under scarce income the adaptive loop (energy-token");
    println!("scheduling at the minimum-energy rail) completes several times the");
    println!("work per joule of the fixed nominal-rail system; with abundant");
    println!("income both complete the whole workload.");
}
