//! Fig. 1 — the idea of energy-proportional computing: activity versus
//! supplied energy, for the proportional (self-timed converter) and
//! conventional (overhead-first) systems.

use emc_bench::Series;
use emc_core::ActivityCurve;
use emc_units::Joules;

fn main() {
    let curve = ActivityCurve::new_default();
    let mut s = Series::new(
        "fig01",
        "activity vs supplied energy (counts per quantum)",
        &["energy_pJ", "proportional", "conventional"],
    );
    for (e, prop, conv) in curve.sweep(Joules(6e-12), 17) {
        s.push(vec![e.0 * 1e12, prop as f64, conv as f64]);
    }
    s.emit();
    println!("Shape check: the proportional system produces activity from the");
    println!("smallest quanta; the conventional system is dead below its");
    println!("overhead, then grows faster — matching the paper's Fig. 1 sketch.");
}
