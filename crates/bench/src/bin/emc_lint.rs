//! `emc-lint` — run the full `emc-verify` rule set over every built-in
//! circuit plus the known-bad fixtures, as a deterministic parallel
//! campaign.
//!
//! ```text
//! emc-lint [--smoke] [--threads N] [--seed S] [--json]
//! ```
//!
//! * `--smoke` shrinks the parametric circuits (CI gate);
//! * `--threads N` changes wall-clock only — the reports and the
//!   campaign digest are byte-identical for any worker count;
//! * `--json` emits one JSON object per circuit (a JSON array on
//!   stdout) and nothing else, for tooling.
//!
//! Exit status is non-zero if any speed-independent built-in circuit
//! reports an error (or an unexpected warning), or if a known-bad
//! fixture fails to reproduce its golden rule set — so the binary is
//! its own regression test.

use emc_bench::print_campaign_summary;
use emc_sim::campaign::CampaignConfig;
use emc_verify::builtin::{broken_suite, builtin_suite};
use emc_verify::{verify_suite, Circuit, Report, Verifier};

struct Args {
    smoke: bool,
    threads: usize,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        threads: 0,
        seed: 2011,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--json" => out.json = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                out.threads = v.parse().expect("--threads takes an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                out.seed = v.parse().expect("--seed takes a u64");
            }
            other => {
                panic!("unknown flag {other:?}; usage: [--smoke] [--threads N] [--seed S] [--json]")
            }
        }
    }
    out
}

/// The golden expectation for one circuit: clean with exactly these
/// warning rules (built-ins), or exactly this distinct rule set
/// (fixtures).
enum Expect {
    CleanWithWarnings(&'static [&'static str]),
    ExactRules(&'static [&'static str]),
}

fn check(report: &Report, expect: &Expect) -> Result<(), String> {
    match expect {
        Expect::CleanWithWarnings(warn_rules) => {
            if !report.is_clean() {
                return Err(format!(
                    "{}: expected clean, got {} error(s)",
                    report.circuit,
                    report.errors()
                ));
            }
            if !report.exhaustive {
                return Err(format!("{}: exploration was capped", report.circuit));
            }
            let rules = report.distinct_rules();
            if rules != *warn_rules {
                return Err(format!(
                    "{}: expected warnings {warn_rules:?}, got {rules:?}",
                    report.circuit
                ));
            }
            Ok(())
        }
        Expect::ExactRules(expected) => {
            let rules = report.distinct_rules();
            if rules != *expected {
                return Err(format!(
                    "{}: expected rules {expected:?}, got {rules:?}",
                    report.circuit
                ));
            }
            Ok(())
        }
    }
}

fn main() {
    let args = parse_args();

    let mut circuits: Vec<Circuit<'static>> = Vec::new();
    let mut expectations: Vec<Expect> = Vec::new();
    for circuit in builtin_suite(args.smoke) {
        let warns: &'static [&'static str] = if circuit.name == "bundled" {
            &["TA001"]
        } else {
            &[]
        };
        expectations.push(Expect::CleanWithWarnings(warns));
        circuits.push(circuit);
    }
    for (circuit, rules) in broken_suite() {
        expectations.push(Expect::ExactRules(rules));
        circuits.push(circuit);
    }

    let verifier = Verifier::new();
    let config = CampaignConfig::new(args.seed).threads(args.threads);
    let (reports, campaign) = verify_suite(&circuits, &verifier, &config);

    if args.json {
        // Machine output: a JSON array, nothing else (no timings or
        // thread counts, so the bytes are invocation-invariant).
        let body: Vec<String> = reports.iter().map(Report::to_json).collect();
        println!("[{}]", body.join(","));
    } else {
        println!("emc-lint: {} circuit(s)", reports.len());
        for report in &reports {
            println!(
                "  {:<16} {:>6} state(s)  {} error(s), {} warning(s), {} note(s){}",
                report.circuit,
                report.states,
                report.errors(),
                report.warnings(),
                report.infos(),
                if report.exhaustive { "" } else { "  [capped]" },
            );
            for d in &report.diagnostics {
                println!("    {d}");
            }
        }
        print_campaign_summary(&campaign);
    }

    let mut failures = Vec::new();
    for (report, expect) in reports.iter().zip(&expectations) {
        if let Err(e) = check(report, expect) {
            failures.push(e);
        }
    }
    if !failures.is_empty() {
        eprintln!("emc-lint: golden self-check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if !args.json {
        println!("emc-lint: OK — all speed-independent circuits clean, all fixtures reproduce");
    }
}
