//! `emc-lint` — run the full `emc-verify` rule set over every built-in
//! circuit plus the known-bad fixtures, as a deterministic parallel
//! campaign.
//!
//! ```text
//! emc-lint [--smoke] [--static] [--threads N] [--seed S] [--json]
//! ```
//!
//! * `--smoke` shrinks the parametric circuits (CI gate);
//! * `--static` runs the zero-exploration `emc-analyze` tier instead of
//!   exhaustive verification: every built-in, every known-bad fixture
//!   and every pinned `.emcnet` corpus file is analyzed structurally
//!   and checked against pinned static rule sets;
//! * `--threads N` changes wall-clock only — the reports and the
//!   campaign digest are byte-identical for any worker count;
//! * `--json` emits one JSON object per circuit (a JSON array on
//!   stdout) and nothing else, for tooling.
//!
//! Exit status is non-zero if any speed-independent built-in circuit
//! reports an error (or an unexpected warning), or if a known-bad
//! fixture fails to reproduce its golden rule set — so the binary is
//! its own regression test in both tiers.

use emc_bench::print_campaign_summary;
use emc_sim::campaign::CampaignConfig;
use emc_verify::builtin::{broken_suite, builtin_suite};
use emc_verify::{verify_suite, Circuit, Report, Verifier};

struct Args {
    smoke: bool,
    static_tier: bool,
    threads: usize,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        static_tier: false,
        threads: 0,
        seed: 2011,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--static" => out.static_tier = true,
            "--json" => out.json = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                out.threads = v.parse().expect("--threads takes an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                out.seed = v.parse().expect("--seed takes a u64");
            }
            other => {
                panic!(
                    "unknown flag {other:?}; usage: [--smoke] [--static] [--threads N] [--seed S] [--json]"
                )
            }
        }
    }
    out
}

/// Pinned static rule sets for the named circuits the `--static` tier
/// analyzes. Corpus `.emcnet` files are not listed: for those the gate
/// is "no error-severity finding".
const STATIC_GOLDEN: &[(&str, &[&str])] = &[
    ("counter", &[]),
    ("wchb", &["SA004", "SA005"]),
    ("micropipeline", &["SA005"]),
    ("bundled", &["SA004", "TA001"]),
    ("sram", &["SA004", "SA005"]),
    ("adder", &["SA001", "SA004"]),
    ("hazard_glitch", &["SA004"]),
    ("dual_rail_short", &["CD001", "SA006"]),
    ("unbundled_sram", &["SA004", "TA001"]),
    (
        "structural_mess",
        &["NET001", "NET002", "NET003", "SA004", "SA005"],
    ),
];

/// The zero-exploration tier: run `emc_analyze::analyze` over the
/// built-ins, the known-bad fixtures, and the pinned generator corpus,
/// then self-check against [`STATIC_GOLDEN`].
fn run_static(args: &Args) -> ! {
    let mut rows: Vec<(String, emc_analyze::Analysis)> = Vec::new();
    for circuit in builtin_suite(args.smoke) {
        let a = emc_analyze::analyze(&circuit.netlist, &circuit.initial);
        rows.push((circuit.name.clone(), a));
    }
    for (circuit, _) in broken_suite() {
        let a = emc_analyze::analyze(&circuit.netlist, &circuit.initial);
        rows.push((circuit.name.clone(), a));
    }
    // The pinned corpus: every committed `.emcnet` fixture, in name
    // order so output is deterministic.
    let corpus_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../gen/tests/fixtures");
    let mut corpus: Vec<std::path::PathBuf> = std::fs::read_dir(corpus_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "emcnet"))
                .collect()
        })
        .unwrap_or_default();
    corpus.sort();
    let mut corpus_names: Vec<String> = Vec::new();
    for path in &corpus {
        let text = std::fs::read_to_string(path).expect("read corpus fixture");
        let netlist =
            emc_netlist::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("corpus")
            .to_string();
        corpus_names.push(name.clone());
        rows.push((name, emc_analyze::analyze(&netlist, &[])));
    }

    if args.json {
        let body: Vec<String> = rows
            .iter()
            .map(|(name, a)| {
                let rules: Vec<String> =
                    a.distinct_rules().iter().map(|r| format!("{r:?}")).collect();
                format!(
                    "{{\"circuit\":{name:?},\"findings\":{},\"rules\":[{}],\"orbit_groups\":{},\"interfering_pairs\":{}}}",
                    a.diagnostics.len(),
                    rules.join(","),
                    a.orbits.group_count(),
                    a.interference.pair_count(),
                )
            })
            .collect();
        println!("[{}]", body.join(","));
    } else {
        println!(
            "emc-lint --static: {} circuit(s), zero exploration",
            rows.len()
        );
        for (name, a) in &rows {
            println!(
                "  {:<28} {:>3} finding(s)  rules {:?}  orbits {} group(s)",
                name,
                a.diagnostics.len(),
                a.distinct_rules(),
                a.orbits.group_count(),
            );
        }
    }

    let mut failures = Vec::new();
    for (name, a) in &rows {
        if let Some((_, expected)) = STATIC_GOLDEN.iter().find(|(n, _)| n == name) {
            let rules = a.distinct_rules();
            if rules != *expected {
                failures.push(format!(
                    "{name}: expected static rules {expected:?}, got {rules:?}"
                ));
            }
        } else if corpus_names.iter().any(|n| n == name) {
            if a.has_errors() {
                failures.push(format!(
                    "{name}: corpus fixture has static errors: {:?}",
                    a.distinct_rules()
                ));
            }
        } else {
            failures.push(format!("{name}: no pinned static expectation"));
        }
    }
    if corpus_names.is_empty() {
        failures.push(format!("no corpus fixtures found under {corpus_dir}"));
    }
    if !failures.is_empty() {
        eprintln!("emc-lint --static: golden self-check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if !args.json {
        println!("emc-lint --static: OK — all static rule sets match the pinned goldens");
    }
    std::process::exit(0);
}

/// The golden expectation for one circuit: clean with exactly these
/// warning rules (built-ins), or exactly this distinct rule set
/// (fixtures).
enum Expect {
    CleanWithWarnings(&'static [&'static str]),
    ExactRules(&'static [&'static str]),
}

fn check(report: &Report, expect: &Expect) -> Result<(), String> {
    match expect {
        Expect::CleanWithWarnings(warn_rules) => {
            if !report.is_clean() {
                return Err(format!(
                    "{}: expected clean, got {} error(s)",
                    report.circuit,
                    report.errors()
                ));
            }
            if !report.exhaustive {
                return Err(format!("{}: exploration was capped", report.circuit));
            }
            let rules = report.distinct_rules();
            if rules != *warn_rules {
                return Err(format!(
                    "{}: expected warnings {warn_rules:?}, got {rules:?}",
                    report.circuit
                ));
            }
            Ok(())
        }
        Expect::ExactRules(expected) => {
            let rules = report.distinct_rules();
            if rules != *expected {
                return Err(format!(
                    "{}: expected rules {expected:?}, got {rules:?}",
                    report.circuit
                ));
            }
            Ok(())
        }
    }
}

fn main() {
    let args = parse_args();
    if args.static_tier {
        run_static(&args);
    }

    let mut circuits: Vec<Circuit<'static>> = Vec::new();
    let mut expectations: Vec<Expect> = Vec::new();
    for circuit in builtin_suite(args.smoke) {
        let warns: &'static [&'static str] = if circuit.name == "bundled" {
            &["TA001"]
        } else {
            &[]
        };
        expectations.push(Expect::CleanWithWarnings(warns));
        circuits.push(circuit);
    }
    for (circuit, rules) in broken_suite() {
        expectations.push(Expect::ExactRules(rules));
        circuits.push(circuit);
    }

    let verifier = Verifier::new();
    let config = CampaignConfig::new(args.seed).threads(args.threads);
    let (reports, campaign) = verify_suite(&circuits, &verifier, &config);

    if args.json {
        // Machine output: a JSON array, nothing else (no timings or
        // thread counts, so the bytes are invocation-invariant).
        let body: Vec<String> = reports.iter().map(Report::to_json).collect();
        println!("[{}]", body.join(","));
    } else {
        println!("emc-lint: {} circuit(s)", reports.len());
        for report in &reports {
            println!(
                "  {:<16} {:>6} state(s)  {} error(s), {} warning(s), {} note(s){}",
                report.circuit,
                report.states,
                report.errors(),
                report.warnings(),
                report.infos(),
                if report.exhaustive { "" } else { "  [capped]" },
            );
            for d in &report.diagnostics {
                println!("    {d}");
            }
        }
        print_campaign_summary(&campaign);
    }

    let mut failures = Vec::new();
    for (report, expect) in reports.iter().zip(&expectations) {
        if let Err(e) = check(report, expect) {
            failures.push(e);
        }
    }
    if !failures.is_empty() {
        eprintln!("emc-lint: golden self-check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if !args.json {
        println!("emc-lint: OK — all speed-independent circuits clean, all fixtures reproduce");
    }
}
