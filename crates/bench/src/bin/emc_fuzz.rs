//! `emc-fuzz` — seeded generative differential fuzzing front-end.
//!
//! Per seed: draw a circuit plan ([`emc_gen::Plan::from_seed`]), build
//! it, and run the full [`emc_gen::check_generated`] pipeline —
//! structural validation, exhaustive speed-independence verification,
//! reachable-set membership of every simulated state, differential
//! simulation under nominal / sub-threshold / AC-sine Vdd schedules
//! with cross-schedule digest equality, and a byte-stable text
//! round-trip.
//!
//! Seeds are expanded through the campaign engine (splitmix64 per
//! index), and the whole sweep is run at 1, 2 and 8 worker threads with
//! the campaign digests asserted identical — the report this binary
//! prints is byte-identical at any thread count.
//!
//! On failure the offending plan is shrunk to a local minimum
//! (parameters stepped down, block lists bisected and thinned) and the
//! minimal netlist is written to `crates/gen/tests/fixtures/` with the
//! seed in the filename, then the process exits non-zero.
//!
//! Flags: `--smoke` (small generation bounds and budgets, for the
//! tier-1 gate), `--seeds N` (default 32), `--seed BASE` (default
//! 2011), `--out PATH` (also write the report to a file). Flag errors
//! are panics, like the other campaign binaries.

use std::sync::Mutex;

use emc_gen::{check_generated, shrink, CheckOptions, GenBounds, Plan};
use emc_prng::SplitMix64;
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};

struct Args {
    smoke: bool,
    seeds: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seeds: 32,
        seed: 2011,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seeds" => {
                let v = it.next().expect("--seeds needs a value");
                args.seeds = v.parse().expect("--seeds must be a usize");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a u64");
            }
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            other => panic!("unknown flag {other} (try --smoke, --seeds, --seed, --out)"),
        }
    }
    args
}

fn bounds_and_options(smoke: bool) -> (GenBounds, CheckOptions) {
    if smoke {
        (
            GenBounds::smoke(),
            CheckOptions {
                state_cap: 60_000,
                rounds: 6,
            },
        )
    } else {
        (
            GenBounds::full(),
            CheckOptions {
                state_cap: 200_000,
                rounds: 12,
            },
        )
    }
}

fn fixture_path(seed: u64) -> std::path::PathBuf {
    std::path::Path::new("crates/gen/tests/fixtures").join(format!("fuzz_seed{seed:016x}.emcnet"))
}

fn main() {
    let args = parse_args();
    let (bounds, opts) = bounds_and_options(args.smoke);

    println!(
        "== emc-fuzz — generative differential fuzzing ({}, {} seeds, base {}) ==",
        if args.smoke { "smoke" } else { "full" },
        args.seeds,
        args.seed
    );

    let failures: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let jobs: Vec<usize> = (0..args.seeds).collect();
    let worker = |_: &usize, ctx: &RunContext| -> RunReport {
        let plan = Plan::from_seed(ctx.seed, &bounds);
        let gc = plan.build();
        // Zero-exploration pre-filter: a static error (rail short,
        // malformed netlist) is a generator bug the expensive
        // differential oracle need never see. Rejections are counted in
        // the report (value index 7) and still fail the run.
        let analysis = emc_analyze::analyze(&gc.netlist, &gc.initial);
        if analysis.has_errors() {
            let rules = analysis.distinct_rules();
            failures
                .lock()
                .expect("failure list poisoned")
                .push((ctx.seed, format!("static pre-filter rejected: {rules:?}")));
            return RunReport::from_values(
                ctx,
                vec![
                    gc.netlist.gate_count() as f64,
                    gc.netlist.net_count() as f64,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                    1.0, // static_rejected
                ],
            );
        }
        let out = check_generated(&gc, ctx.seed, &opts);
        if let Some(f) = &out.failure {
            failures
                .lock()
                .expect("failure list poisoned")
                .push((ctx.seed, f.clone()));
        }
        RunReport::from_values(
            ctx,
            vec![
                out.gates as f64,
                out.nets as f64,
                out.verify_states as f64,
                f64::from(u8::from(out.verify_exhaustive)),
                f64::from_bits(out.digest),
                out.fired_total as f64,
                f64::from(u8::from(out.is_ok())),
                0.0, // static_rejected
            ],
        )
    };

    // The thread sweep is itself an assertion: the campaign digest (an
    // FNV fold over every run's values, in index order) must not depend
    // on the worker-thread count.
    let mut reference = None;
    let mut final_report = None;
    for threads in [1usize, 2, 8] {
        failures.lock().expect("failure list poisoned").clear();
        let cfg = CampaignConfig::new(args.seed).threads(threads);
        let report = run_campaign(&jobs, &cfg, worker);
        let digest = report.digest();
        match reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(
                r, digest,
                "campaign digest diverged at {threads} threads — determinism broken"
            ),
        }
        println!(
            "  sweep {threads}t: digest {digest:#018x} in {:.2} ms",
            report.wall_clock.as_secs_f64() * 1e3
        );
        final_report = Some(report);
    }
    let report = final_report.expect("at least one sweep ran");

    // The per-seed report, reconstructed from the index-ordered rows —
    // byte-identical at every thread count by the assertion above.
    let mut text = String::new();
    let mut ok_count = 0usize;
    let mut exhaustive_count = 0usize;
    let mut static_rejected = 0usize;
    for run in &report.runs {
        let seed = SplitMix64::mix(args.seed, run.index as u64);
        debug_assert_eq!(seed, run.seed);
        let plan = Plan::from_seed(run.seed, &bounds);
        let v = &run.values;
        let rejected = v[7] != 0.0;
        let ok = v[6] != 0.0;
        ok_count += usize::from(ok);
        exhaustive_count += usize::from(v[3] != 0.0);
        static_rejected += usize::from(rejected);
        text.push_str(&format!(
            "seed {:016x} {:28} gates={:5} states={:6} digest={:016x} {}\n",
            run.seed,
            plan.summary(),
            v[0] as u64,
            v[2] as u64,
            v[4].to_bits(),
            if rejected {
                "STATIC-REJECT"
            } else if ok {
                "ok"
            } else {
                "FAIL"
            },
        ));
    }
    print!("{text}");
    println!(
        "  {}/{} seeds ok, {} exhaustively verified, {} statically rejected, campaign digest {:#018x}",
        ok_count,
        args.seeds,
        exhaustive_count,
        static_rejected,
        reference.expect("reference digest set")
    );

    if let Some(path) = &args.out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  [saved {path}]");
    }

    let failed = failures.into_inner().expect("failure list poisoned");
    if let Some((seed, message)) = failed.first() {
        eprintln!("FAIL: seed {seed:016x}: {message}");
        let plan = Plan::from_seed(*seed, &bounds);
        let minimal = shrink(plan, |p| !check_generated(&p.build(), *seed, &opts).is_ok());
        let gc = minimal.build();
        let out = check_generated(&gc, *seed, &opts);
        let path = fixture_path(*seed);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let body = format!(
            "# emc-fuzz reproducer\n# seed {:016x}\n# plan {}\n# failure {}\n{}",
            seed,
            minimal.summary(),
            out.failure
                .as_deref()
                .unwrap_or("(no longer fails after shrink)"),
            emc_netlist::to_text(&gc.netlist)
        );
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("  minimal reproducer written to {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
        std::process::exit(1);
    }
}
