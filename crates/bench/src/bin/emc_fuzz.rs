//! `emc-fuzz` — seeded generative differential fuzzing front-end.
//!
//! Per seed: draw a circuit plan ([`emc_gen::Plan::from_seed`]), build
//! it, and run the full [`emc_gen::check_generated`] pipeline —
//! structural validation, exhaustive speed-independence verification,
//! reachable-set membership of every simulated state, differential
//! simulation under nominal / sub-threshold / AC-sine Vdd schedules
//! with cross-schedule digest equality, and a byte-stable text
//! round-trip.
//!
//! Seeds are expanded through the campaign engine (splitmix64 per
//! index), and the whole sweep is run at 1, 2 and 8 worker threads with
//! the campaign digests asserted identical — the report this binary
//! prints is byte-identical at any thread count.
//!
//! On failure the offending plan is shrunk to a local minimum
//! (parameters stepped down, block lists bisected and thinned) and the
//! minimal netlist is written to `crates/gen/tests/fixtures/` with the
//! seed in the filename, then the process exits non-zero.
//!
//! `--import <dir>` switches to *corpus mutation* mode: every
//! `*.emcnet` file in the directory (sorted by name) becomes mutation
//! stock, and each campaign seed picks one file and applies 1–3 seeded
//! text-level mutations (input swaps, gate-kind flips, drive tweaks,
//! dropped outputs, truncation, token noise). The oracle: the mutated
//! text must either be *rejected* by the importer with a classified
//! error, or parse into a netlist on which `validate` and the static
//! analyzer run without panicking and whose canonical export reparses
//! byte-identically (`export ∘ import ∘ export` idempotence). The same
//! 1/2/8-thread digest sweep applies; a failing mutant is written to
//! `crates/gen/tests/fixtures/` and the process exits non-zero.
//!
//! Flags: `--smoke` (small generation bounds and budgets, for the
//! tier-1 gate), `--seeds N` (default 32), `--seed BASE` (default
//! 2011), `--import DIR` (mutate an existing corpus instead of
//! generating), `--out PATH` (also write the report to a file). Flag
//! errors are panics, like the other campaign binaries.

use std::sync::Mutex;

use emc_gen::{check_generated, shrink, CheckOptions, GenBounds, Plan};
use emc_prng::{Rng, SplitMix64, StdRng};
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};

struct Args {
    smoke: bool,
    seeds: usize,
    seed: u64,
    import: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seeds: 32,
        seed: 2011,
        import: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seeds" => {
                let v = it.next().expect("--seeds needs a value");
                args.seeds = v.parse().expect("--seeds must be a usize");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a u64");
            }
            "--import" => args.import = Some(it.next().expect("--import needs a directory")),
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            other => {
                panic!("unknown flag {other} (try --smoke, --seeds, --seed, --import, --out)")
            }
        }
    }
    args
}

fn bounds_and_options(smoke: bool) -> (GenBounds, CheckOptions) {
    if smoke {
        (
            GenBounds::smoke(),
            CheckOptions {
                state_cap: 60_000,
                rounds: 6,
            },
        )
    } else {
        (
            GenBounds::full(),
            CheckOptions {
                state_cap: 200_000,
                rounds: 12,
            },
        )
    }
}

fn fixture_path(seed: u64) -> std::path::PathBuf {
    std::path::Path::new("crates/gen/tests/fixtures").join(format!("fuzz_seed{seed:016x}.emcnet"))
}

/// Gate-kind mnemonics the kind-flip mutation draws from (a mix of
/// arity-compatible and arity-breaking flips — both outcomes are
/// interesting to the importer).
const FLIP_KINDS: [&str; 10] = [
    "INPUT", "BUF", "INV", "AND", "NAND", "OR", "NOR", "XOR", "C", "TGL",
];

/// Junk tokens for the token-noise mutation.
const NOISE_TOKENS: [&str; 5] = ["q7", "FROB", "n999999", "-", "0x1"];

/// Replacement drive fields: some legal, some that must be rejected.
const DRIVE_TWEAKS: [&str; 6] = ["0", "-2", "0.25", "3.5", "1e309", "nope"];

/// Applies one seeded text-level mutation to `lines`, returning its
/// name, or `None` if no applicable site was found this attempt.
fn mutate_once(lines: &mut Vec<String>, rng: &mut StdRng) -> Option<&'static str> {
    let gate_lines: Vec<usize> = (0..lines.len())
        .filter(|&i| lines[i].starts_with("g "))
        .collect();
    match rng.gen_range(0..6u32) {
        // Swap two input references on one gate line.
        0 => {
            let li = *pick(&gate_lines, rng)?;
            let mut parts: Vec<String> = lines[li].splitn(5, ' ').map(str::to_string).collect();
            let inputs: Vec<&str> = parts.get(3)?.split(',').collect();
            if inputs.len() < 2 {
                return None;
            }
            let a = rng.gen_range(0..inputs.len());
            let b = rng.gen_range(0..inputs.len());
            let mut swapped: Vec<&str> = inputs.clone();
            swapped.swap(a, b);
            parts[3] = swapped.join(",");
            lines[li] = parts.join(" ");
            Some("swap-inputs")
        }
        // Replace the gate kind with another mnemonic.
        1 => {
            let li = *pick(&gate_lines, rng)?;
            let mut parts: Vec<String> = lines[li].splitn(5, ' ').map(str::to_string).collect();
            if parts.len() < 4 {
                return None;
            }
            parts[1] = FLIP_KINDS[rng.gen_range(0..FLIP_KINDS.len())].to_string();
            lines[li] = parts.join(" ");
            Some("kind-flip")
        }
        // Replace the drive field.
        2 => {
            let li = *pick(&gate_lines, rng)?;
            let mut parts: Vec<String> = lines[li].splitn(5, ' ').map(str::to_string).collect();
            if parts.len() < 4 {
                return None;
            }
            parts[2] = DRIVE_TWEAKS[rng.gen_range(0..DRIVE_TWEAKS.len())].to_string();
            lines[li] = parts.join(" ");
            Some("drive-tweak")
        }
        // Drop one output mark.
        3 => {
            let out_lines: Vec<usize> = (0..lines.len())
                .filter(|&i| lines[i].starts_with("o "))
                .collect();
            let li = *pick(&out_lines, rng)?;
            lines.remove(li);
            Some("drop-output")
        }
        // Truncate the file at a random line.
        4 => {
            if lines.len() < 2 {
                return None;
            }
            lines.truncate(rng.gen_range(1..lines.len()));
            Some("truncate")
        }
        // Replace one whitespace-separated token with junk.
        _ => {
            let li = rng.gen_range(0..lines.len());
            let mut tokens: Vec<String> =
                lines[li].split_whitespace().map(str::to_string).collect();
            if tokens.is_empty() {
                return None;
            }
            let ti = rng.gen_range(0..tokens.len());
            tokens[ti] = NOISE_TOKENS[rng.gen_range(0..NOISE_TOKENS.len())].to_string();
            lines[li] = tokens.join(" ");
            Some("token-noise")
        }
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

/// Applies 1–3 seeded mutations and returns the mutant plus the names
/// of the mutations that actually landed.
fn mutate_text(text: &str, rng: &mut StdRng) -> (String, Vec<&'static str>) {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let wanted = rng.gen_range(1..=3usize);
    let mut applied = Vec::new();
    let mut attempts = 0;
    while applied.len() < wanted && attempts < 16 {
        attempts += 1;
        if let Some(name) = mutate_once(&mut lines, rng) {
            applied.push(name);
        }
    }
    (lines.join("\n") + "\n", applied)
}

/// What the import oracle observed on one mutant.
struct ImportOutcome {
    parsed: bool,
    valid: bool,
    roundtrip: bool,
    gates: usize,
    failure: Option<String>,
}

/// The corpus-mutation oracle: a mutant must either be cleanly
/// rejected by the importer, or parse into a netlist that survives
/// `validate` + static analysis without panicking and whose canonical
/// export is a fixed point of `import ∘ export`.
fn import_oracle(text: &str) -> ImportOutcome {
    match emc_netlist::from_text(text) {
        Err(_) => ImportOutcome {
            parsed: false,
            valid: false,
            roundtrip: false,
            gates: 0,
            failure: None,
        },
        Ok(netlist) => {
            let issues = netlist.validate();
            let analysis = emc_analyze::analyze(&netlist, &[]);
            let valid = issues.is_empty() && !analysis.has_errors();
            let canonical = emc_netlist::to_text(&netlist);
            let failure = match emc_netlist::from_text(&canonical) {
                Err(e) => Some(format!("canonical export failed to reparse: {e}")),
                Ok(again) => (emc_netlist::to_text(&again) != canonical)
                    .then(|| "export-import-export is not idempotent".to_string()),
            };
            ImportOutcome {
                parsed: true,
                valid,
                roundtrip: failure.is_none(),
                gates: netlist.gate_count(),
                failure,
            }
        }
    }
}

/// The `--import` entry point: corpus-mutation fuzzing over every
/// `.emcnet` file in `dir`, thread-sweep asserted like the generative
/// mode. Exits non-zero after writing the mutant on failure.
fn run_import(args: &Args, dir: &str) {
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read --import dir {dir}: {e}"))
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            let name = path.file_name()?.to_str()?.to_string();
            if path.extension()? != "emcnet" {
                return None;
            }
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            Some((name, text))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .emcnet files under {dir}");

    println!(
        "== emc-fuzz — corpus mutation ({} files from {dir}, {} seeds, base {}) ==",
        files.len(),
        args.seeds,
        args.seed
    );

    let failures: Mutex<Vec<(u64, String, String)>> = Mutex::new(Vec::new());
    let jobs: Vec<usize> = (0..args.seeds).collect();
    let worker = |_: &usize, ctx: &RunContext| -> RunReport {
        let file_ix = (ctx.seed % files.len() as u64) as usize;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let (mutant, muts) = mutate_text(&files[file_ix].1, &mut rng);
        // A panic anywhere in the oracle is exactly the bug class this
        // mode hunts; catch it so the sweep completes and the mutant
        // can be written out.
        let outcome = std::panic::catch_unwind(|| import_oracle(&mutant));
        let (parsed, valid, roundtrip, gates, ok) = match &outcome {
            Err(_) => {
                failures.lock().expect("failure list poisoned").push((
                    ctx.seed,
                    "oracle panicked on mutant".to_string(),
                    mutant.clone(),
                ));
                (false, false, false, 0, false)
            }
            Ok(o) => {
                if let Some(f) = &o.failure {
                    failures.lock().expect("failure list poisoned").push((
                        ctx.seed,
                        f.clone(),
                        mutant.clone(),
                    ));
                }
                (o.parsed, o.valid, o.roundtrip, o.gates, o.failure.is_none())
            }
        };
        RunReport::from_values(
            ctx,
            vec![
                file_ix as f64,
                muts.len() as f64,
                f64::from(u8::from(parsed)),
                f64::from(u8::from(valid)),
                f64::from(u8::from(roundtrip)),
                gates as f64,
                f64::from(u8::from(ok && outcome.is_ok())),
            ],
        )
    };

    let mut reference = None;
    let mut final_report = None;
    for threads in [1usize, 2, 8] {
        failures.lock().expect("failure list poisoned").clear();
        let cfg = CampaignConfig::new(args.seed).threads(threads);
        let report = run_campaign(&jobs, &cfg, worker);
        let digest = report.digest();
        match reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(
                r, digest,
                "campaign digest diverged at {threads} threads — determinism broken"
            ),
        }
        println!(
            "  sweep {threads}t: digest {digest:#018x} in {:.2} ms",
            report.wall_clock.as_secs_f64() * 1e3
        );
        final_report = Some(report);
    }
    let report = final_report.expect("at least one sweep ran");

    let mut text = String::new();
    let mut ok_count = 0usize;
    let mut rejected = 0usize;
    for run in &report.runs {
        let v = &run.values;
        let file = &files[v[0] as usize].0;
        let mut rng = StdRng::seed_from_u64(run.seed);
        let (_, muts) = mutate_text(&files[v[0] as usize].1, &mut rng);
        let ok = v[6] != 0.0;
        ok_count += usize::from(ok);
        rejected += usize::from(v[2] == 0.0);
        text.push_str(&format!(
            "seed {:016x} {:36} muts={:<36} gates={:4} {}\n",
            run.seed,
            file,
            muts.join(","),
            v[5] as u64,
            if v[2] == 0.0 {
                "parse-reject"
            } else if ok {
                "ok"
            } else {
                "FAIL"
            },
        ));
    }
    print!("{text}");
    println!(
        "  {}/{} mutants ok, {} cleanly rejected, campaign digest {:#018x}",
        ok_count,
        args.seeds,
        rejected,
        reference.expect("reference digest set")
    );

    if let Some(path) = &args.out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  [saved {path}]");
    }

    let failed = failures.into_inner().expect("failure list poisoned");
    if let Some((seed, message, mutant)) = failed.first() {
        eprintln!("FAIL: seed {seed:016x}: {message}");
        let path = std::path::Path::new("crates/gen/tests/fixtures")
            .join(format!("import_seed{seed:016x}.emcnet"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let body = format!(
            "# emc-fuzz --import reproducer\n# seed {seed:016x}\n# failure {message}\n{mutant}"
        );
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("  failing mutant written to {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if let Some(dir) = args.import.clone() {
        run_import(&args, &dir);
        return;
    }
    let (bounds, opts) = bounds_and_options(args.smoke);

    println!(
        "== emc-fuzz — generative differential fuzzing ({}, {} seeds, base {}) ==",
        if args.smoke { "smoke" } else { "full" },
        args.seeds,
        args.seed
    );

    let failures: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let jobs: Vec<usize> = (0..args.seeds).collect();
    let worker = |_: &usize, ctx: &RunContext| -> RunReport {
        let plan = Plan::from_seed(ctx.seed, &bounds);
        let gc = plan.build();
        // Zero-exploration pre-filter: a static error (rail short,
        // malformed netlist) is a generator bug the expensive
        // differential oracle need never see. Rejections are counted in
        // the report (value index 7) and still fail the run.
        let analysis = emc_analyze::analyze(&gc.netlist, &gc.initial);
        if analysis.has_errors() {
            let rules = analysis.distinct_rules();
            failures
                .lock()
                .expect("failure list poisoned")
                .push((ctx.seed, format!("static pre-filter rejected: {rules:?}")));
            return RunReport::from_values(
                ctx,
                vec![
                    gc.netlist.gate_count() as f64,
                    gc.netlist.net_count() as f64,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                    0.0,
                    1.0, // static_rejected
                ],
            );
        }
        let out = check_generated(&gc, ctx.seed, &opts);
        if let Some(f) = &out.failure {
            failures
                .lock()
                .expect("failure list poisoned")
                .push((ctx.seed, f.clone()));
        }
        RunReport::from_values(
            ctx,
            vec![
                out.gates as f64,
                out.nets as f64,
                out.verify_states as f64,
                f64::from(u8::from(out.verify_exhaustive)),
                f64::from_bits(out.digest),
                out.fired_total as f64,
                f64::from(u8::from(out.is_ok())),
                0.0, // static_rejected
            ],
        )
    };

    // The thread sweep is itself an assertion: the campaign digest (an
    // FNV fold over every run's values, in index order) must not depend
    // on the worker-thread count.
    let mut reference = None;
    let mut final_report = None;
    for threads in [1usize, 2, 8] {
        failures.lock().expect("failure list poisoned").clear();
        let cfg = CampaignConfig::new(args.seed).threads(threads);
        let report = run_campaign(&jobs, &cfg, worker);
        let digest = report.digest();
        match reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(
                r, digest,
                "campaign digest diverged at {threads} threads — determinism broken"
            ),
        }
        println!(
            "  sweep {threads}t: digest {digest:#018x} in {:.2} ms",
            report.wall_clock.as_secs_f64() * 1e3
        );
        final_report = Some(report);
    }
    let report = final_report.expect("at least one sweep ran");

    // The per-seed report, reconstructed from the index-ordered rows —
    // byte-identical at every thread count by the assertion above.
    let mut text = String::new();
    let mut ok_count = 0usize;
    let mut exhaustive_count = 0usize;
    let mut static_rejected = 0usize;
    for run in &report.runs {
        let seed = SplitMix64::mix(args.seed, run.index as u64);
        debug_assert_eq!(seed, run.seed);
        let plan = Plan::from_seed(run.seed, &bounds);
        let v = &run.values;
        let rejected = v[7] != 0.0;
        let ok = v[6] != 0.0;
        ok_count += usize::from(ok);
        exhaustive_count += usize::from(v[3] != 0.0);
        static_rejected += usize::from(rejected);
        text.push_str(&format!(
            "seed {:016x} {:28} gates={:5} states={:6} digest={:016x} {}\n",
            run.seed,
            plan.summary(),
            v[0] as u64,
            v[2] as u64,
            v[4].to_bits(),
            if rejected {
                "STATIC-REJECT"
            } else if ok {
                "ok"
            } else {
                "FAIL"
            },
        ));
    }
    print!("{text}");
    println!(
        "  {}/{} seeds ok, {} exhaustively verified, {} statically rejected, campaign digest {:#018x}",
        ok_count,
        args.seeds,
        exhaustive_count,
        static_rejected,
        reference.expect("reference digest set")
    );

    if let Some(path) = &args.out {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  [saved {path}]");
    }

    let failed = failures.into_inner().expect("failure list poisoned");
    if let Some((seed, message)) = failed.first() {
        eprintln!("FAIL: seed {seed:016x}: {message}");
        let plan = Plan::from_seed(*seed, &bounds);
        let minimal = shrink(plan, |p| !check_generated(&p.build(), *seed, &opts).is_ok());
        let gc = minimal.build();
        let out = check_generated(&gc, *seed, &opts);
        let path = fixture_path(*seed);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let body = format!(
            "# emc-fuzz reproducer\n# seed {:016x}\n# plan {}\n# failure {}\n{}",
            seed,
            minimal.summary(),
            out.failure
                .as_deref()
                .unwrap_or("(no longer fails after shrink)"),
            emc_netlist::to_text(&gc.netlist)
        );
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("  minimal reproducer written to {}", path.display()),
            Err(e) => eprintln!("  could not write {}: {e}", path.display()),
        }
        std::process::exit(1);
    }
}
