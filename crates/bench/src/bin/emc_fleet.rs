//! `emc-fleet` — the fleet-scale simulation front-end.
//!
//! Simulates a fleet of harvester-powered sensor nodes (see
//! `crates/fleet`): per-node power chains, calibrated self-timed
//! islands, message passing over a latency topology, energy-token task
//! admission and game-theoretic duty arbitration — sharded across the
//! campaign worker pool.
//!
//! By default the run is repeated at 1, 2 and 8 worker threads and the
//! report digests (and JSON bytes) are asserted identical — the same
//! self-checking sweep `emc-fuzz` performs. Pass `--threads N` to run
//! once at a fixed worker count instead.
//!
//! Flags:
//! * `--nodes N` (default 10000), `--epochs N` (default 50)
//! * `--topology ring|grid|clustered` (default ring)
//! * `--seed N` (default 2011), `--threads N` (0 = available)
//! * `--drought FROM:UNTIL:FACTOR` — throttle every harvester to
//!   FACTOR between those epochs (the EXPERIMENTS.md QoS sweep)
//! * `--smoke` — tiny fleet, sparse calibration (tier-1 gate)
//! * `--json` — print the full deterministic report JSON
//! * `--out PATH` — also write the JSON to a file
//!
//! Flag errors are panics, like the other campaign binaries.

use emc_fleet::{run_fleet, CalibDepth, DroughtSpec, FleetConfig, FleetReport, TopologyKind};

struct Args {
    nodes: u32,
    epochs: u64,
    topology: TopologyKind,
    seed: u64,
    threads: Option<usize>,
    drought: Option<DroughtSpec>,
    smoke: bool,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 10_000,
        epochs: 50,
        topology: TopologyKind::Ring,
        seed: 2011,
        threads: None,
        drought: None,
        smoke: false,
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                let v = it.next().expect("--nodes needs a value");
                args.nodes = v.parse().expect("--nodes must be a u32");
            }
            "--epochs" => {
                let v = it.next().expect("--epochs needs a value");
                args.epochs = v.parse().expect("--epochs must be a u64");
            }
            "--topology" => {
                let v = it.next().expect("--topology needs a value");
                args.topology = TopologyKind::parse(&v)
                    .unwrap_or_else(|| panic!("unknown topology {v} (ring|grid|clustered)"));
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a u64");
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                args.threads = Some(v.parse().expect("--threads must be a usize"));
            }
            "--drought" => {
                let v = it.next().expect("--drought needs FROM:UNTIL:FACTOR");
                let parts: Vec<&str> = v.split(':').collect();
                assert_eq!(parts.len(), 3, "--drought takes FROM:UNTIL:FACTOR");
                args.drought = Some(DroughtSpec {
                    from_epoch: parts[0].parse().expect("drought FROM must be a u64"),
                    until_epoch: parts[1].parse().expect("drought UNTIL must be a u64"),
                    factor: parts[2].parse().expect("drought FACTOR must be an f64"),
                });
            }
            "--smoke" => args.smoke = true,
            "--json" => args.json = true,
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            other => panic!(
                "unknown flag {other} (try --nodes, --epochs, --topology, --seed, \
                 --threads, --drought, --smoke, --json, --out)"
            ),
        }
    }
    args
}

fn print_summary(report: &FleetReport) {
    let secs = report.wall.as_secs_f64();
    let node_epochs = report.nodes as u64 * report.epochs;
    println!(
        "  {} nodes x {} epochs ({} shards, {} topology): {} wakes, {} deliveries in {:.3} s",
        report.nodes,
        report.epochs,
        report.shards,
        report.topology,
        report.wakes,
        report.deliveries,
        secs
    );
    println!(
        "    {:.0} node-epochs/s, {:.0} fleet events/s",
        node_epochs as f64 / secs.max(1e-9),
        report.events() as f64 / secs.max(1e-9)
    );
    println!(
        "    tasks {}/{} completed ({} refused), msgs {} sent / {} received / {} dropped / {} in flight",
        report.summary.completed,
        report.summary.expected,
        report.summary.refused,
        report.summary.sent,
        report.summary.received,
        report.summary.dropped,
        report.inflight
    );
    for c in &report.classes {
        println!(
            "    class {:<9} {:>7} nodes  qos {:.3}",
            c.name,
            c.nodes,
            c.qos()
        );
    }
    println!("    digest {:016x}", report.digest);
}

fn main() {
    let args = parse_args();
    let (nodes, epochs, calib) = if args.smoke {
        (400, 6, CalibDepth::Smoke)
    } else {
        (args.nodes, args.epochs, CalibDepth::Full)
    };
    let config = FleetConfig {
        nodes,
        epochs,
        epoch: 1_000_000,
        seed: args.seed,
        topology: args.topology,
        calib,
        drought: args.drought,
    };
    println!(
        "== emc-fleet — deterministic fleet simulation ({}, {} nodes, {} epochs, seed {}) ==",
        if args.smoke { "smoke" } else { "full" },
        config.nodes,
        config.epochs,
        config.seed
    );

    let report = match args.threads {
        Some(t) => {
            let report = run_fleet(&config, t);
            println!("  [threads {t}]");
            print_summary(&report);
            report
        }
        None => {
            // The thread sweep is itself an assertion: the fleet digest
            // and the full report JSON must not depend on the worker
            // thread count.
            let mut reference: Option<(u64, String)> = None;
            let mut last = None;
            for threads in [1usize, 2, 8] {
                let report = run_fleet(&config, threads);
                println!("  [sweep {threads}t: {:.3} s]", report.wall.as_secs_f64());
                match &reference {
                    None => reference = Some((report.digest, report.to_json())),
                    Some((digest, json)) => {
                        assert_eq!(
                            *digest, report.digest,
                            "fleet digest diverged at {threads} threads — determinism broken"
                        );
                        assert_eq!(
                            *json,
                            report.to_json(),
                            "fleet report JSON diverged at {threads} threads"
                        );
                    }
                }
                last = Some(report);
            }
            let report = last.expect("sweep ran");
            println!("  digest invariant held at 1/2/8 threads");
            print_summary(&report);
            report
        }
    };

    if args.json {
        print!("{}", report.to_json());
    }
    if let Some(path) = &args.out {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  [saved {path}]");
    }
}
