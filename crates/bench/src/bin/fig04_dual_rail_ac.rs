//! Fig. 4 — operation of the 2-bit self-timed counter under the AC
//! supply 200 mV ± 100 mV at 1 MHz: counting pauses in the troughs,
//! resumes in the crests, and the code sequence never corrupts.

use emc_async::{SelfTimedOscillator, ToggleRippleCounter};
use emc_bench::Series;
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_power::chain::ac_supply;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Hertz, Seconds, Volts};

fn main() {
    let freq = Hertz(1e6);
    let periods = 40.0;

    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 2, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let supply = ac_supply(Volts(0.2), Volts(0.1), freq);
    let d = sim.add_domain(
        "ac",
        SupplyKind::ideal_with_resolution(supply.clone(), Seconds(freq.period().0 / 128.0)),
    );
    sim.assign_all(d);
    counter.watch(&mut sim);
    sim.watch(osc.output());
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(periods * freq.period().0));

    // Waveform-style series: every settled code change with the supply
    // voltage at that instant.
    // Also dump the waveforms as VCD for a waveform viewer, with the AC
    // rail itself as an analog `real` variable under the logic.
    {
        let mut nets = vec![osc.output()];
        nets.extend_from_slice(counter.bits());
        let initial = vec![true, false, false];
        let t_end = Seconds(periods * freq.period().0);
        let rail = emc_sim::AnalogTrack::sample(
            "vdd_ac",
            &supply,
            Seconds(0.0),
            t_end,
            Seconds(freq.period().0 / 64.0),
        );
        let vcd = emc_sim::to_vcd_with_analog(
            sim.trace(),
            sim.netlist(),
            &nets,
            &initial,
            1000,
            std::slice::from_ref(&rail),
        );
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
        std::fs::create_dir_all(&dir).expect("create figures dir");
        let path = dir.join("fig04.vcd");
        std::fs::write(&path, vcd).expect("write VCD");
        println!("  [saved {}]", path.display());
    }

    let mut s = Series::new(
        "fig04",
        "2-bit counter under AC 200mV±100mV @ 1MHz: code changes vs Vdd(t)",
        &["t_us", "vdd_V", "code"],
    );
    for (t, code) in counter.count_sequence(&sim, 0) {
        s.push(vec![t.0 * 1e6, supply.value_at(t), code as f64]);
    }
    s.emit();

    // Correctness: the settled sequence must be consecutive mod 4.
    let settled = counter.settled_sequence(&sim, 0);
    let mut corrupt = 0;
    for w in settled.windows(2) {
        if (w[0] + 1) % 4 != w[1] {
            corrupt += 1;
        }
    }
    // Activity concentration: transitions near crests vs troughs.
    let edges = sim.trace().entries();
    let (mut crest, mut trough) = (0u64, 0u64);
    for e in edges {
        if supply.value_at(e.time) > 0.2 {
            crest += 1;
        } else {
            trough += 1;
        }
    }
    println!(
        "counted {} settled increments, {corrupt} corrupted",
        settled.len()
    );
    println!(
        "transitions in crest half-cycles: {crest}, in trough half-cycles: {trough} \
         ({}x concentration)",
        if trough > 0 {
            crest / trough.max(1)
        } else {
            crest
        }
    );
    println!("hazards observed: {}", sim.hazards().len());
    println!();
    println!("Shape check: counting is modulated by the supply (activity piles");
    println!("into the crests), pauses through the sub-floor troughs, and the");
    println!("sequence stays consecutive — the robustness the paper's Fig. 4");
    println!("waveforms demonstrate.");
}
