//! S9 — Design-1 computation beyond pipelines: the DIMS dual-rail adder
//! across the voltage range, with its completion time as the built-in
//! "done" signal.

use emc_async::DualRailAdder;
use emc_bench::Series;
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Seconds, Waveform};

fn main() {
    let mut s = Series::new(
        "ablation_dims_adder",
        "8-bit DIMS adder: latency and energy per addition vs Vdd",
        &["vdd_V", "latency_ns", "energy_fJ", "adds_per_uJ"],
    );
    for vdd in [1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2] {
        let mut nl = Netlist::new();
        let adder = DualRailAdder::build(&mut nl, 8, "alu");
        let mut sim = Simulator::new(nl, DeviceModel::umc90());
        let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
        sim.assign_all(d);
        sim.start();
        sim.run_to_quiescence(100_000);
        let t0 = sim.now();
        let e0 = sim.energy_drawn(sim.domain_id(0));
        let deadline = Seconds(t0.0 + 100.0);
        let sum = adder.add(&mut sim, 137, 85, deadline).expect("completes");
        assert_eq!(sum, 222);
        let dt = sim.now().0 - t0.0;
        let de = sim.energy_drawn(sim.domain_id(0)).0 - e0.0;
        s.push(vec![vdd, dt * 1e9, de * 1e15, 1e-6 / de]);
    }
    s.emit();
    println!("Shape check: the same netlist computes correctly from 1 V down");
    println!("to 0.2 V; latency stretches ~1000x while energy per addition");
    println!("falls ~15x — computation priced in joules, with the completion");
    println!("detector announcing validity at every operating point.");
}
