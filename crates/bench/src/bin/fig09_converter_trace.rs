//! Figs. 9–10 — the self-timed counter as charge-to-code converter: the
//! LSB oscillates, every stage divides the pulse rate by two, firing is
//! strictly sequential (hazard-free), and the oscillation frequency is
//! modulated downwards as the sampling capacitor sags.

use emc_async::{SelfTimedOscillator, ToggleRippleCounter};
use emc_bench::Series;
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Farads, Volts};

fn main() {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let cap = sim.add_domain("cs", SupplyKind::capacitor(Farads(4e-12), Volts(1.0)));
    sim.assign_all(cap);
    sim.watch(osc.output());
    counter.watch(&mut sim);
    osc.prime(&mut sim);
    sim.start();
    sim.run_to_quiescence(10_000_000);

    // Per-stage division: transitions per toggle.
    let mut s = Series::new(
        "fig09_division",
        "transitions per counter stage (frequency ÷2 per stage)",
        &["stage", "transitions", "ratio_to_prev"],
    );
    let mut prev = None;
    for (i, &g) in counter.toggles().iter().enumerate() {
        let n = sim.transition_count(g);
        let ratio = prev.map_or(0.0, |p: u64| p as f64 / n.max(1) as f64);
        s.push(vec![i as f64, n as f64, ratio]);
        prev = Some(n);
    }
    s.emit();

    // Frequency modulation: R0 period early vs late in the discharge.
    let edges = sim.trace().rising_edges(osc.output());
    let mut fm = Series::new(
        "fig09_fm",
        "R0 pulse period along the capacitor discharge",
        &["pulse_index", "t_us", "period_ns"],
    );
    for (i, w) in edges.windows(2).enumerate() {
        if i % 8 == 0 {
            fm.push(vec![i as f64, w[1].0 * 1e6, (w[1].0 - w[0].0) * 1e9]);
        }
    }
    fm.emit();

    let early: f64 = edges[1].0 - edges[0].0;
    let n = edges.len();
    let late: f64 = edges[n - 1].0 - edges[n - 2].0;
    println!("pulses generated: {}", n);
    println!(
        "R0 period: {:.1} ns at full charge -> {:.1} ns near depletion ({:.0}x slower)",
        early * 1e9,
        late * 1e9,
        late / early
    );
    println!(
        "hazards: {} (strictly sequential firing)",
        sim.hazards().len()
    );
    println!(
        "final code {} from {} total transitions, residual {:.0} mV",
        sim.transition_count(counter.toggles()[0]),
        sim.total_transitions(),
        sim.domain_voltage(cap).0 * 1e3
    );
    println!();
    println!("Shape check: each stage fires at half the rate of its");
    println!("predecessor; the oscillator's own frequency is modulated by the");
    println!("decaying rail — the converter is a frequency-and-amplitude-");
    println!("modulated oscillator exactly as §III-B describes.");
}
