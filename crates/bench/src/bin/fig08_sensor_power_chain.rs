//! Fig. 8 — the voltage sensor in an EH-based power chain: the
//! charge-to-digital sensor samples the reservoir and a bang-bang
//! controller steers the DC-DC output rail.

use emc_bench::Series;
use emc_power::{DcDcConverter, HarvestSource, PowerChain, StorageCap};
use emc_sensors::{ChargeToDigitalConverter, SensorLoop};
use emc_units::{Farads, Seconds, Volts, Waveform};

fn main() {
    // A harvest profile that sags mid-run: strong, then weak, then strong.
    let profile = Waveform::steps([
        (Seconds(0.0), 250e-6),
        (Seconds(40e-3), 8e-6),
        (Seconds(110e-3), 250e-6),
    ]);
    let chain = PowerChain::new(
        HarvestSource::Profile(profile),
        StorageCap::new(Farads(4.7e-6), Volts(0.6), Volts(1.1)),
        DcDcConverter::new(Volts(0.5)),
    );
    let sensor = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    let mut lp = SensorLoop::new(
        chain,
        sensor,
        vec![Volts(0.3), Volts(0.5), Volts(0.7), Volts(1.0)],
        Volts(0.45),
        Volts(0.85),
        Seconds(1e-3),
    );
    let records = lp.run(160, 220e-6);

    let mut s = Series::new(
        "fig08",
        "sensor-in-the-loop: reservoir, sensed estimate, code, chosen rail",
        &["t_ms", "v_store_mV", "estimate_mV", "code", "v_out_V"],
    );
    for r in records.iter().step_by(4) {
        s.push(vec![
            r.t.0 * 1e3,
            r.v_store.0 * 1e3,
            r.estimate.0 * 1e3,
            r.code as f64,
            r.v_out.0,
        ]);
    }
    s.emit();

    // Report sensing error only where the reservoir sits inside the
    // sensor's calibrated range (below it the decode clamps to the range
    // floor by design).
    let worst = records
        .iter()
        .filter(|r| r.v_store.0 >= 0.15)
        .map(|r| (r.estimate.0 - r.v_store.0).abs())
        .fold(0.0_f64, f64::max);
    let report = lp.chain().report();
    println!(
        "worst in-range sensing error in the loop: {:.1} mV",
        worst * 1e3
    );
    println!(
        "harvested {:.1} µJ, delivered {:.1} µJ, deficit {:.2} µJ",
        report.harvested.0 * 1e6,
        report.delivered.0 * 1e6,
        report.deficit.0 * 1e6
    );
    println!();
    println!("Shape check: the rail steps down when the harvest sags and back");
    println!("up when it recovers — the controller acting purely on the self-");
    println!("timed sensor's code, as in the paper's Fig. 8 chain.");
}
