//! F3b — the composed power-adaptive system (§IV's two-way control) on a
//! day-in-the-life harvest profile: style switches, elastic concurrency
//! and energy-modulated work, in one time series.

use emc_bench::Series;
use emc_core::qos::DesignStyle;
use emc_core::PowerAdaptiveSystem;
use emc_power::{DcDcConverter, HarvestSource, PowerChain, StorageCap};
use emc_sched::{ConcurrencyController, ConcurrencyModel};
use emc_units::{Farads, Seconds, Volts, Watts, Waveform};

fn main() {
    // Income: strong morning, dead noon, weak afternoon, strong evening.
    let income = Waveform::steps([
        (Seconds(0.0), 400e-6),
        (Seconds(100e-3), 0.0),
        (Seconds(250e-3), 30e-6),
        (Seconds(400e-3), 400e-6),
    ]);
    let chain = PowerChain::new(
        HarvestSource::Profile(income),
        StorageCap::new(Farads(4.7e-6), Volts(0.9), Volts(1.1)),
        DcDcConverter::new(Volts(0.5)),
    );
    let elastic =
        ConcurrencyController::new(ConcurrencyModel::new(8.0, 1.0, 32).with_power(0.1, 1.0), 8);
    let mut sys = PowerAdaptiveSystem::new(chain, elastic, Seconds(1e-3), Watts(20e-6));

    let ticks = sys.run(550);
    let mut s = Series::new(
        "fig03b",
        "power-adaptive system time series (style: 1 = bundled, 0 = SI)",
        &["t_ms", "v_store_mV", "style", "v_rail_V", "k", "ops"],
    );
    for t in ticks.iter().step_by(10) {
        s.push(vec![
            t.t.0 * 1e3,
            t.v_store.0 * 1e3,
            matches!(t.style, DesignStyle::BundledData) as u8 as f64,
            t.v_rail.0,
            t.concurrency as f64,
            t.ops as f64,
        ]);
    }
    s.emit();
    let r = sys.report();
    println!(
        "totals: {} ops, {:.1} µJ harvested, {:.1} µJ delivered, {} style switches, {} gated steps",
        r.ops,
        r.harvested.0 * 1e6,
        r.delivered.0 * 1e6,
        r.style_switches,
        r.gated_steps
    );
    println!("ops per harvested mJ: {:.0}", r.ops_per_joule() * 1e-3);
    println!();
    println!("Shape check: the system runs bundled at 1 V while the reservoir");
    println!("is healthy, drops to the speed-independent style at the 0.4 V");
    println!("minimum-energy rail as the store drains, throttles concurrency");
    println!("with the income, and gates off only when the bank is empty —");
    println!("computation modulated by energy, end to end.");
}
