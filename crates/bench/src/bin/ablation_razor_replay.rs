//! Razor replay ablation: what error detection, replay and DVS buy.
//!
//! First series sweeps Vdd and reports, per voltage, how many timing
//! violations the shadow latches detect, how many replays recover them,
//! the fraction of transfer energy spent on replays, and the delivered
//! correct fraction — against the silently-corrupting plain bundled
//! pipeline from Fig. 2. Second series runs the
//! [`emc_altlogic::RazorDvsController`] servo closed-loop on the same
//! rig: starting from nominal Vdd, each window measures the detected
//! error rate and steps the supply, walking down the worst-case margin
//! until errors just begin to appear.

use emc_altlogic::RazorDvsController;
use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs, Series};
use emc_core::families::{family_words, measure_razor_outcome};
use emc_core::qos::{measure_pipeline_qos, DesignStyle};
use emc_sim::campaign::{run_campaign, RunReport};
use emc_units::Volts;

fn main() {
    let args = CampaignArgs::parse(7);
    let full = [0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0];
    let smoke = [0.3, 0.5, 1.0];
    let grid: &[f64] = if args.smoke { &smoke } else { &full };
    let seed = args.seed;
    let words = family_words();

    let report = run_campaign(grid, &args.config(), |&v, ctx| {
        let out = measure_razor_outcome(Volts(v), seed);
        let correct = out
            .received
            .iter()
            .zip(&words)
            .filter(|(a, b)| a == b)
            .count();
        let quality = if out.completed && !out.received.is_empty() {
            correct as f64 / words.len() as f64
        } else {
            0.0
        };
        let replay_fraction = if out.energy.0 > 0.0 {
            out.replay_energy.0 / out.energy.0
        } else {
            0.0
        };
        let bundled = measure_pipeline_qos(DesignStyle::BundledData, Volts(v), seed);
        RunReport::from_values(
            ctx,
            vec![
                v,
                out.errors_detected as f64,
                out.replays as f64,
                out.unresolved as f64,
                replay_fraction,
                quality,
                bundled.correct_fraction,
            ],
        )
    });
    let s = campaign_series(
        "ablation_razor_replay",
        "Razor detection/replay vs Vdd, against silent bundled corruption",
        &[
            "vdd_V",
            "errors_detected",
            "replays",
            "unresolved",
            "replay_energy_fraction",
            "razor_correct_fraction",
            "bundled_correct_fraction",
        ],
        &report,
    );
    s.emit();
    print_campaign_summary(&report);

    // Closed-loop DVS: servo Vdd to a 10% detected-error target. The
    // loop is stateful, so it runs serially (still seed-deterministic).
    let mut ctl = RazorDvsController::new(Volts(1.0), Volts(0.25), Volts(1.0), Volts(0.05), 0.10);
    let windows = if args.smoke { 6 } else { 16 };
    let mut servo = Series::new(
        "ablation_razor_dvs",
        "DVS servo trajectory toward the target detected-error rate",
        &["window", "vdd_V", "detected_error_rate"],
    );
    for w in 0..windows {
        let vdd = ctl.vdd();
        let out = measure_razor_outcome(vdd, seed);
        let rate = if out.received.is_empty() {
            1.0
        } else {
            out.errors_detected as f64 / out.received.len() as f64
        };
        servo.push(vec![w as f64, vdd.0, rate]);
        ctl.observe(out.errors_detected, out.received.len());
    }
    servo.emit();
    println!("Shape check: at nominal Vdd nothing is detected and nothing is");
    println!("replayed; as Vdd falls, violations appear and replays hold the");
    println!("correct fraction above the bundled curve at a bounded replay");
    println!("energy fraction. The servo walks Vdd down from nominal until");
    println!("the detected-error rate enters the target band — trading the");
    println!("worst-case margin for occasional, paid-for replays.");
}
