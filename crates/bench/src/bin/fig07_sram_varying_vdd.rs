//! Fig. 7 — operation of the SI SRAM under varying Vdd: the first write
//! under a depleted supply takes long; the second, under a healthy
//! supply, is fast; both are correct.
//!
//! The two-write story is the paper's figure; the campaign engine then
//! sweeps write/read latency and energy over the full Vdd range, one
//! independent SRAM per point (`--smoke`, `--threads`, `--seed`).

use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs, Series};
use emc_sim::campaign::{run_campaign, RunReport};
use emc_sram::{Sram, SramConfig};
use emc_units::{Seconds, Waveform};

fn main() {
    let args = CampaignArgs::parse(0xf15_07);
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    // The supply ramps 0.25 V → 1.0 V at t = 30 µs.
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.25),
        (Seconds(30e-6), 0.25),
        (Seconds(32e-6), 1.0),
    ]);
    let res = Seconds(50e-9);
    let horizon = Seconds(1.0);

    let w1 = sram.write_under(&supply, Seconds(0.0), 0, 0xAAAA, res, horizon);
    let w2 = sram.write_under(&supply, Seconds(35e-6), 1, 0x5555, res, horizon);
    let r1 = sram.read_under(&supply, Seconds(40e-6), 0, res, horizon);
    let r2 = sram.read_under(&supply, Seconds(41e-6), 1, res, horizon);

    // Dump the ramping rail as an analog-only VCD: the slow-then-fast
    // write story is legible straight off the supply trace in a viewer.
    {
        let rail = emc_sim::AnalogTrack::sample(
            "vdd_ramp",
            &supply,
            Seconds(0.0),
            Seconds(45e-6),
            Seconds(250e-9),
        );
        let vcd = emc_sim::to_vcd_with_analog(
            &emc_sim::Trace::new(),
            &emc_netlist::Netlist::new(),
            &[],
            &[],
            1000,
            std::slice::from_ref(&rail),
        );
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
        std::fs::create_dir_all(&dir).expect("create figures dir");
        let path = dir.join("fig07_supply.vcd");
        std::fs::write(&path, vcd).expect("write VCD");
        println!("  [saved {}]", path.display());
    }

    let mut s = Series::new(
        "fig07",
        "two writes under a rising supply: latency and correctness",
        &["op", "t_start_us", "vdd_V", "latency_us", "correct"],
    );
    s.push(vec![
        1.0,
        0.0,
        0.25,
        w1.latency.0 * 1e6,
        w1.correct as u8 as f64,
    ]);
    s.push(vec![
        2.0,
        35.0,
        1.0,
        w2.latency.0 * 1e6,
        w2.correct as u8 as f64,
    ]);
    s.emit();

    // The sweep behind the figure: one self-contained SRAM per Vdd
    // point, writing then reading back under a constant supply.
    let (lo, hi) = (0.25, 1.0);
    let n = args.points(16, 4);
    let vdds: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();
    let report = run_campaign(&vdds, &args.config(), |&vdd, ctx| {
        let mut sram = Sram::new(SramConfig::paper_1kbit());
        let supply = Waveform::constant(vdd);
        let w = sram.write_under(&supply, Seconds(0.0), 0, 0xA5A5, res, horizon);
        let r = sram.read_under(&supply, Seconds(w.latency.0 + 1e-9), 0, res, horizon);
        let ok = w.correct && r.correct && r.data == Some(0xA5A5);
        RunReport::from_values(
            ctx,
            vec![
                vdd,
                w.latency.0 * 1e6,
                r.latency.0 * 1e6,
                (w.energy.0 + r.energy.0) * 1e12,
                ok as u8 as f64,
            ],
        )
    });
    let sweep = campaign_series(
        "fig07_sweep",
        "SI SRAM write+read latency and energy vs constant Vdd",
        &[
            "vdd_V",
            "write_latency_us",
            "read_latency_us",
            "energy_pJ",
            "correct",
        ],
        &report,
    );
    sweep.emit();
    print_campaign_summary(&report);

    println!(
        "write #1 @ 0.25 V: {:>9.2} µs ({})",
        w1.latency.0 * 1e6,
        if w1.correct { "correct" } else { "FAILED" }
    );
    println!(
        "write #2 @ 1.00 V: {:>9.3} µs ({})",
        w2.latency.0 * 1e6,
        if w2.correct { "correct" } else { "FAILED" }
    );
    println!(
        "read-back: {:#06x} and {:#06x} (expected 0xaaaa / 0x5555)",
        r1.data.unwrap_or(0),
        r2.data.unwrap_or(0)
    );
    println!("latency ratio: {:.0}x", w1.latency.0 / w2.latency.0);
    println!();
    println!("Shape check: exactly the paper's Fig. 7 story — \"the first");
    println!("writing works under low Vdd, it takes long time, while the second");
    println!("write, at high Vdd, works much faster\", with no data corruption.");
}
