//! S4 — game-theoretic power management \[16\]: best-response bidding for
//! a shared power budget versus a static equal split.

use emc_bench::Series;
use emc_sched::{PowerGame, TaskBid};

fn main() {
    let mut s = Series::new(
        "ablation_power_game",
        "deadline misses & tardiness: equilibrium vs equal split, across budgets",
        &[
            "budget_W",
            "eq_misses",
            "game_misses",
            "eq_tardiness",
            "game_tardiness",
            "rounds",
        ],
    );
    for budget in [2.0, 2.5, 3.0, 4.0, 6.0] {
        let game = PowerGame::new(
            budget,
            1e-4,
            vec![
                TaskBid {
                    workload: 10.0,
                    deadline: 5.0,
                },
                TaskBid {
                    workload: 2.0,
                    deadline: 10.0,
                },
                TaskBid {
                    workload: 2.0,
                    deadline: 10.0,
                },
                TaskBid {
                    workload: 4.0,
                    deadline: 8.0,
                },
            ],
        );
        let equal = game.equal_split();
        let (bids, rounds) = game.best_response_dynamics(200);
        let nash = game.allocation(&bids);
        s.push(vec![
            budget,
            game.misses(&equal) as f64,
            game.misses(&nash) as f64,
            game.total_tardiness(&equal),
            game.total_tardiness(&nash),
            rounds as f64,
        ]);
    }
    s.emit();
    println!("Shape check: at tight budgets the equilibrium allocation routes");
    println!("power to the urgent tasks and beats the static split on both");
    println!("misses and tardiness; with a generous budget both policies meet");
    println!("everything — the soft-arbitration picture of [16].");
}
