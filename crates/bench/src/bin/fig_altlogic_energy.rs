//! Energy per operation for the five logic families across the supply
//! range, plus the adiabatic ramp-time sweep.
//!
//! The first series widens Fig. 2's two-style comparison to all five
//! [`emc_altlogic::LogicFamily`] design points on a 0.2–1.0 V grid; the
//! second sweeps the adiabatic power-clock ramp time at a fixed peak
//! voltage, exposing the `ξ·(RC/T)` friction / leakage-floor trade-off
//! and its optimum. Both sweeps run as campaigns (`--smoke`,
//! `--threads`, `--seed`) with byte-identical output at any thread
//! count.

use emc_altlogic::LogicFamily;
use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs};
use emc_core::families::{measure_adiabatic, measure_family};
use emc_sim::campaign::{run_campaign, RunReport};
use emc_units::{Seconds, Volts};

fn main() {
    let args = CampaignArgs::parse(7);
    let full = [0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0];
    let smoke = [0.25, 0.5, 1.0];
    let grid: &[f64] = if args.smoke { &smoke } else { &full };
    let seed = args.seed;

    let report = run_campaign(grid, &args.config(), |&v, ctx| {
        let mut values = vec![v];
        for family in LogicFamily::ALL {
            let p = measure_family(family, Volts(v), seed);
            values.push(p.energy_per_op.0);
            values.push(p.quality);
        }
        RunReport::from_values(ctx, values)
    });
    let s = campaign_series(
        "fig_altlogic_energy",
        "energy per op and delivered quality vs Vdd per logic family",
        &[
            "vdd_V",
            "si_dual_rail_J",
            "si_dual_rail_q",
            "bundled_data_J",
            "bundled_data_q",
            "adiabatic_J",
            "adiabatic_q",
            "charge_recovery_J",
            "charge_recovery_q",
            "razor_dvs_J",
            "razor_dvs_q",
        ],
        &report,
    );
    s.emit();
    print_campaign_summary(&report);

    // Ramp-time sweep: the adiabatic family's private energy knob.
    let ramp_full = [2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 5000.0];
    let ramp_smoke = [5.0, 50.0, 500.0];
    let ramps: &[f64] = if args.smoke { &ramp_smoke } else { &ramp_full };
    let ramp_report = run_campaign(ramps, &args.config(), |&ns, ctx| {
        let p = measure_adiabatic(Volts(0.5), Seconds(ns * 1e-9));
        RunReport::from_values(ctx, vec![ns, p.energy_per_op.0, p.throughput])
    });
    let s = campaign_series(
        "fig_altlogic_ramp",
        "adiabatic energy per op vs power-clock ramp time at 0.5 V",
        &["ramp_ns", "energy_per_op_J", "throughput_ops_per_s"],
        &ramp_report,
    );
    s.emit();
    print_campaign_summary(&ramp_report);
    println!("Shape check: adiabatic sits below both classic styles while its");
    println!("clock ramps slowly; the ramp sweep is U-shaped — friction falls");
    println!("as 1/T until the leakage floor takes over. Razor-DVS tracks the");
    println!("bundled curve at nominal but keeps delivering (via replay) into");
    println!("voltages where plain bundling has already collapsed.");
}
