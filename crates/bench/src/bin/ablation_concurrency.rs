//! S3 — stochastic analysis of power, latency and degree of concurrency
//! \[12\]: the M/M/K/N trade-off curves.

use emc_bench::Series;
use emc_sched::ConcurrencyModel;

fn main() {
    let model = ConcurrencyModel::new(8.0, 1.0, 32).with_power(0.5, 1.0);
    let mut s = Series::new(
        "ablation_concurrency",
        "latency / power / energy-per-job vs degree of concurrency (λ=8, μ=1)",
        &[
            "k",
            "mean_latency",
            "mean_power",
            "throughput",
            "loss_prob",
            "energy_per_job",
        ],
    );
    for p in model.sweep(16) {
        s.push(vec![
            p.k as f64,
            p.mean_latency,
            p.mean_power,
            p.throughput,
            p.loss_probability,
            p.energy_per_job,
        ]);
    }
    s.emit();
    println!("Shape check: latency collapses and throughput saturates once k");
    println!("exceeds the offered load (the knee at k ≈ λ/μ = 8); power grows");
    println!("with k; energy per job is minimised just past the knee where the");
    println!("base power is amortised — the concurrency-degree trade-off the");
    println!("paper's companion analysis [12] charts.");
}
