//! `emc-perf` — the hot-kernel throughput benchmark.
//!
//! Measures the three inner loops every experiment in this repository
//! leans on, and emits one flat JSON object so successive PRs can record
//! a perf trajectory (`BENCH_*.json`):
//!
//! * **events/sec** — the discrete-event simulator on a free-running
//!   self-timed counter, at a constant rail and under an AC supply
//!   (the Fig. 4 integration path);
//! * **states/sec** — the speed-independence explorer over the full
//!   built-in verification suite;
//! * **campaign wall-clock** — the deterministic fan-out engine at 1, 2
//!   and 8 worker threads, with the byte-identical-report invariant
//!   checked on every run;
//! * **fleet nodes/sec** — the `emc-fleet` sharded node simulation
//!   (node-epochs/s and fleet events/s on a single worker);
//! * **PDES events/sec** — the Vdd-domain-partitioned parallel
//!   simulator on a million-gate pipeline array, sequentially and at
//!   1/2/8 worker threads, with the canonical trace digest asserted
//!   bit-identical across every run.
//!
//! Flags: `--smoke` (tiny workloads, self-checking, for the tier-1
//! gate), `--seed N`, `--out PATH` (also write the JSON to a file),
//! `--baseline PATH` (read a previous run's JSON and record speedups),
//! `--guard PCT` (with `--baseline`: fail unless every guarded rate —
//! events/s, states/s, and the fleet, generated-netlist and PDES rates
//! when the baseline records them — stays within PCT percent of the
//! baseline; a breach names each regressed metric, its baseline and
//! current values, and the baseline file). Flag errors are panics,
//! like the other campaign binaries.

use std::time::Instant;

use emc_async::{MullerPipeline, SelfTimedOscillator, ToggleRippleCounter};
use emc_bench::{
    drive_array, json_number, json_string, pdes_array, pdes_parallel, pdes_sequential,
};
use emc_device::DeviceModel;
use emc_fleet::{CalibDepth, FleetConfig};
use emc_netlist::{GateKind, Netlist};
use emc_prng::{Rng, StdRng};
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Hertz, Seconds, Waveform};
use emc_verify::builtin::builtin_suite;
use emc_verify::{Circuit, EnvAction, EnvView, Environment, Explorer};

/// Workload sizes for one measurement pass.
struct Sizes {
    const_events: u64,
    const_repeats: usize,
    ac_events: u64,
    ac_repeats: usize,
    verify_repeats: usize,
    verify_smoke_suite: bool,
    campaign_jobs: usize,
    gen_stages: usize,
    gen_width: usize,
    gen_rounds: usize,
    red_rows: usize,
    red_cols: usize,
    fleet_nodes: u32,
    fleet_epochs: u64,
    pdes_rows: usize,
    pdes_cols: usize,
    pdes_parts: usize,
    pdes_ticks: usize,
}

impl Sizes {
    fn full() -> Self {
        Self {
            const_events: 400_000,
            const_repeats: 4,
            ac_events: 60_000,
            ac_repeats: 3,
            verify_repeats: 3,
            verify_smoke_suite: false,
            campaign_jobs: 16,
            // 4000 stages × 64 bits of WCHB is 256 gates per stage plus
            // the input rank: 1,024,128 gates — the million-gate floor.
            gen_stages: 4000,
            gen_width: 64,
            gen_rounds: 192,
            red_rows: 2,
            red_cols: 2,
            fleet_nodes: 20_000,
            fleet_epochs: 25,
            // 512 rows × 500 WCHB stages ≈ 1.02M gates across 8 Vdd
            // domains — the parallel-simulation headline workload.
            pdes_rows: 512,
            pdes_cols: 500,
            pdes_parts: 8,
            pdes_ticks: 12,
        }
    }

    fn smoke() -> Self {
        Self {
            const_events: 2_000,
            const_repeats: 1,
            ac_events: 500,
            ac_repeats: 1,
            verify_repeats: 1,
            verify_smoke_suite: true,
            campaign_jobs: 4,
            gen_stages: 4,
            gen_width: 2,
            gen_rounds: 16,
            red_rows: 2,
            red_cols: 1,
            fleet_nodes: 500,
            fleet_epochs: 4,
            pdes_rows: 8,
            pdes_cols: 6,
            pdes_parts: 2,
            pdes_ticks: 7,
        }
    }
}

fn counting_rig(supply: SupplyKind) -> Simulator {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let _cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", supply);
    sim.assign_all(d);
    osc.prime(&mut sim);
    sim.start();
    sim
}

/// Best-of-`repeats` event throughput: `(events, best_secs, events/sec)`.
fn measure_sim(events: u64, repeats: usize, supply: impl Fn() -> SupplyKind) -> (u64, f64, f64) {
    let mut best = f64::INFINITY;
    let mut fired_once = 0;
    for _ in 0..repeats.max(1) {
        let mut sim = counting_rig(supply());
        let t0 = Instant::now();
        let fired = sim.run_to_quiescence(events);
        let secs = t0.elapsed().as_secs_f64();
        assert!(fired > 0, "simulator workload fired no events");
        fired_once = fired;
        best = best.min(secs);
    }
    (fired_once, best, fired_once as f64 / best)
}

/// A deep Muller-pipeline circuit (the builtin micropipeline's shape,
/// without its STG attachment) — the explorer's heavy workload: state
/// count grows with depth, so the measurement is not dominated by
/// per-pass setup.
fn deep_pipeline(stages: usize) -> Circuit<'static> {
    let mut nl = Netlist::new();
    let p = MullerPipeline::build(&mut nl, stages, "mp");
    let req = p.request();
    let c0 = p.stages()[0];
    let c_last = *p.stages().last().expect("non-empty pipeline");
    let tail_ack = p.tail_ack();
    Circuit::new(
        "deep_pipeline",
        nl,
        Environment {
            initial: 0,
            step: Box::new(move |_, v: &EnvView<'_>| {
                let mut acts = Vec::new();
                if v.value(c0) == v.value(req) {
                    acts.push(EnvAction {
                        net: req,
                        value: !v.value(req),
                        next: 0,
                    });
                }
                if v.value(tail_ack) != v.value(c_last) {
                    acts.push(EnvAction {
                        net: tail_ack,
                        value: v.value(c_last),
                        next: 0,
                    });
                }
                acts
            }),
        },
    )
}

/// Best-of-`repeats` explorer throughput over the built-in suite plus a
/// deep pipeline: `(states per pass, best_secs, states/sec)`.
fn measure_verify(repeats: usize, smoke_suite: bool) -> (usize, f64, f64) {
    let mut best = f64::INFINITY;
    let mut states_once = 0;
    let deep_stages = if smoke_suite { 4 } else { 10 };
    for _ in 0..repeats.max(1) {
        let mut suite = builtin_suite(smoke_suite);
        suite.push(deep_pipeline(deep_stages));
        let t0 = Instant::now();
        let mut states = 0;
        for circuit in &suite {
            let ex = Explorer::new(&circuit.netlist, &circuit.env, &circuit.initial, 500_000);
            let outcome = ex.explore();
            assert!(outcome.exhaustive, "{} exploration capped", circuit.name);
            states += outcome.states;
        }
        let secs = t0.elapsed().as_secs_f64();
        assert!(states > 0, "explorer visited no states");
        states_once = states;
        best = best.min(secs);
    }
    (states_once, best, states_once as f64 / best)
}

/// One campaign run: a ring oscillator at the job's Vdd with a
/// seed-derived burst of enable toggles (the same shape the determinism
/// test suite pins), so the engine's seed plumbing is genuinely on the
/// measured path.
fn campaign_worker(vdd: &f64, ctx: &RunContext) -> RunReport {
    let mut nl = Netlist::new();
    let en = nl.input("en");
    let g1 = nl.gate(GateKind::Nand, &[en, en], "g1");
    let g2 = nl.gate(GateKind::Inv, &[g1], "g2");
    let g3 = nl.gate(GateKind::Inv, &[g2], "g3");
    nl.connect_feedback(g1, g3);
    nl.mark_output(g3);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(*vdd)));
    sim.assign_all(d);
    sim.set_initial(g1, true);
    sim.set_initial(g3, true);
    sim.watch(g3);
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut t = 0.0;
    let mut level = true;
    for _ in 0..8 {
        sim.schedule_input(en, Seconds(t), level);
        t += rng.gen_range(1e-9..10e-9);
        level = !level;
    }
    sim.schedule_input(en, Seconds(t), true);
    sim.start();
    let stats = sim.run_until(Seconds(t + 40e-9));
    RunReport::from_sim(&sim, ctx, stats, vec![*vdd, stats.fired as f64])
}

/// Campaign wall-clock at each thread count, with the determinism
/// invariant asserted: `[(threads, wall_ms)]`.
fn measure_campaign(jobs: usize, seed: u64) -> Vec<(usize, f64)> {
    let vdds: Vec<f64> = (0..jobs).map(|i| 0.4 + 0.05 * i as f64).collect();
    let mut rows = Vec::new();
    let mut reference: Option<u64> = None;
    for threads in [1usize, 2, 8] {
        let cfg = CampaignConfig::new(seed).threads(threads);
        let report = run_campaign(&vdds, &cfg, campaign_worker);
        let digest = report.digest();
        match reference {
            None => reference = Some(digest),
            Some(r) => assert_eq!(
                r, digest,
                "campaign digest diverged at {threads} threads — determinism broken"
            ),
        }
        rows.push((threads, report.wall_clock.as_secs_f64() * 1e3));
    }
    rows
}

/// Throughput of the event kernel on a *generated* workload: a wide
/// WCHB datapath from `emc-gen` (a million gates at full size), driven
/// by the same seeded quiescence-paced environment replay the
/// differential fuzzer uses. Returns `(gates, events, secs, events/s)`.
fn measure_generated(
    stages: usize,
    width: usize,
    rounds: usize,
    seed: u64,
) -> (usize, u64, f64, f64) {
    let gc = emc_gen::wchb_datapath(stages, width, "mg");
    let gates = gc.netlist.gate_count();
    let t0 = Instant::now();
    let diff = emc_gen::run_differential(&gc, emc_gen::Schedule::Nominal, seed, rounds, None);
    let secs = t0.elapsed().as_secs_f64();
    assert!(
        diff.violation.is_none(),
        "generated workload failed to settle: {:?}",
        diff.violation
    );
    assert!(diff.fired > 0, "generated workload fired no events");
    (gates, diff.fired, secs, diff.fired as f64 / secs)
}

/// One full-vs-reduced explorer comparison: `(name, full_states,
/// full_secs, reduced_states, reduced_secs)`. Both passes must be
/// exhaustive; the reduced pass uses the circuit's declared
/// environment footprint for partial-order + symmetry reduction.
fn measure_reduction_one(c: &Circuit<'_>, cap: usize) -> (String, usize, f64, usize, f64) {
    let fp = c
        .footprint
        .as_ref()
        .unwrap_or_else(|| panic!("{}: reduction workload lacks a footprint", c.name));
    let t0 = Instant::now();
    let full = Explorer::new(&c.netlist, &c.env, &c.initial, cap).explore();
    let full_secs = t0.elapsed().as_secs_f64();
    assert!(full.exhaustive, "{}: full exploration capped", c.name);
    let t0 = Instant::now();
    let red = Explorer::new(&c.netlist, &c.env, &c.initial, cap)
        .with_reduction(fp)
        .explore();
    let red_secs = t0.elapsed().as_secs_f64();
    assert!(red.exhaustive, "{}: reduced exploration capped", c.name);
    assert!(
        red.states <= full.states,
        "{}: reduction grew the state count",
        c.name
    );
    (c.name.clone(), full.states, full_secs, red.states, red_secs)
}

/// The POR/symmetry before-after measurement: the built-in SRAM
/// control loop and an `emc-gen` pipelined array (independent rows —
/// the workload where both reductions bite).
fn measure_reduction(
    smoke_suite: bool,
    rows: usize,
    cols: usize,
) -> Vec<(String, usize, f64, usize, f64)> {
    let mut out = Vec::new();
    let sram = builtin_suite(smoke_suite)
        .into_iter()
        .find(|c| c.name == "sram")
        .expect("builtin suite has the SRAM control circuit");
    out.push(measure_reduction_one(&sram, 500_000));
    let array = emc_gen::pipelined_array(rows, cols, "perf-array").verify_circuit();
    out.push(measure_reduction_one(&array, 2_000_000));
    out
}

/// The fleet-scale workload: one pass of `emc-fleet` on a single
/// worker thread. The measured wall is the whole run, calibration
/// included, matching what the report itself records. Returns
/// `(node_epochs, events, secs, node_epochs/s, events/s)`.
fn measure_fleet(nodes: u32, epochs: u64, smoke: bool, seed: u64) -> (u64, u64, f64, f64, f64) {
    let config = FleetConfig {
        calib: if smoke {
            CalibDepth::Smoke
        } else {
            CalibDepth::Full
        },
        ..FleetConfig::new(nodes, epochs, seed)
    };
    let report = emc_fleet::run_fleet(&config, 1);
    assert!(
        report.summary.completed > 0,
        "fleet workload completed no tasks"
    );
    let secs = report.wall.as_secs_f64().max(1e-9);
    let node_epochs = u64::from(nodes) * epochs;
    let events = report.events();
    (
        node_epochs,
        events,
        secs,
        node_epochs as f64 / secs,
        events as f64 / secs,
    )
}

/// One thread count's PDES measurement.
struct PdesRun {
    threads: usize,
    secs: f64,
    rate: f64,
}

/// The PDES measurement bundle: the same rig timed sequentially and at
/// each worker thread count, digest-checked against the oracle.
struct PdesMeasurement {
    gates: usize,
    parts: usize,
    events: u64,
    seq_secs: f64,
    seq_rate: f64,
    runs: Vec<PdesRun>,
    sync_rounds: u64,
    crossing_events: u64,
}

/// Times the Vdd-domain-partitioned simulator against its sequential
/// oracle on the shared pipeline-array rig. Every run must fire the
/// same event count and produce the same canonical trace digest — the
/// determinism contract the tier-1 smoke gate pins at 2 threads.
fn measure_pdes(rows: usize, cols: usize, parts: usize, ticks: usize) -> PdesMeasurement {
    let rig = pdes_array(rows, cols, parts);
    let gates = rig.netlist.gate_count();

    let mut seq = pdes_sequential(&rig);
    let t0 = Instant::now();
    let events = drive_array(&mut seq, &rig, ticks);
    let seq_secs = t0.elapsed().as_secs_f64();
    let digest = seq.trace().canonical_digest();
    drop(seq);

    let mut runs = Vec::new();
    let mut sync_rounds = 0;
    let mut crossing_events = 0;
    for threads in [1usize, 2, 8] {
        let mut par = pdes_parallel(&rig, threads, false);
        let t0 = Instant::now();
        let fired = drive_array(&mut par, &rig, ticks);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            events, fired,
            "PDES fired count diverged from sequential at {threads} threads"
        );
        assert_eq!(
            digest,
            par.trace().digest(),
            "PDES trace digest diverged from sequential at {threads} threads"
        );
        sync_rounds = par.stats().sync_rounds;
        crossing_events = par.stats().crossing_events;
        runs.push(PdesRun {
            threads,
            secs,
            rate: fired as f64 / secs,
        });
    }
    PdesMeasurement {
        gates,
        parts: rig.parts,
        events,
        seq_secs,
        seq_rate: events as f64 / seq_secs,
        runs,
        sync_rounds,
        crossing_events,
    }
}

/// Peak resident-set size of this process (`VmHWM`), in kilobytes.
/// Linux-specific and monotonic over the process lifetime; recorded as
/// an upper bound on the explorer's working set.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    text.lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Extracts `"key": <number>` from a flat JSON object this binary wrote.
fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c == '\n')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

struct Args {
    smoke: bool,
    seed: u64,
    out: Option<String>,
    baseline: Option<String>,
    guard: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 2011,
        out: None,
        baseline: None,
        guard: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a u64");
            }
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            "--baseline" => args.baseline = Some(it.next().expect("--baseline needs a path")),
            "--guard" => {
                let v = it.next().expect("--guard needs a percentage");
                args.guard = Some(v.parse().expect("--guard takes a percentage"));
            }
            other => {
                panic!("unknown flag {other} (try --smoke, --seed, --out, --baseline, --guard)")
            }
        }
    }
    assert!(
        args.guard.is_none() || args.baseline.is_some(),
        "--guard needs --baseline to compare against"
    );
    args
}

fn main() {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes::smoke()
    } else {
        Sizes::full()
    };

    println!(
        "== emc-perf — hot-kernel throughput ({}) ==",
        if args.smoke { "smoke" } else { "full" }
    );

    let (const_events, const_secs, const_rate) =
        measure_sim(sizes.const_events, sizes.const_repeats, || {
            SupplyKind::ideal(Waveform::constant(1.0))
        });
    println!("  sim  const 1.0 V : {const_events} events in {const_secs:.4} s  ({const_rate:.0} events/s)");

    let (ac_events, ac_secs, ac_rate) = measure_sim(sizes.ac_events, sizes.ac_repeats, || {
        SupplyKind::ideal_with_resolution(
            Waveform::sine(0.4, 0.2, Hertz(1e6), 0.0).clamped(0.0, 2.0),
            Seconds(1e-6 / 64.0),
        )
    });
    println!("  sim  AC 0.4±0.2 V: {ac_events} events in {ac_secs:.4} s  ({ac_rate:.0} events/s)");

    let (states, verify_secs, state_rate) =
        measure_verify(sizes.verify_repeats, sizes.verify_smoke_suite);
    println!(
        "  verify explorer  : {states} states in {verify_secs:.4} s  ({state_rate:.0} states/s)"
    );

    let reduction = measure_reduction(sizes.verify_smoke_suite, sizes.red_rows, sizes.red_cols);
    for (name, fs, fsec, rs, rsec) in &reduction {
        println!(
            "  verify reduce {name:<12}: full {fs} states in {fsec:.4} s ({:.0}/s) | reduced {rs} states in {rsec:.4} s ({:.0}/s) | {:.2}x fewer states",
            *fs as f64 / fsec,
            *rs as f64 / rsec,
            *fs as f64 / (*rs).max(1) as f64,
        );
    }
    let rss_kb = peak_rss_kb();
    if let Some(kb) = rss_kb {
        println!("  peak RSS         : {kb} kB (VmHWM after reduction passes)");
    }

    let (gen_gates, gen_events, gen_secs, gen_rate) = measure_generated(
        sizes.gen_stages,
        sizes.gen_width,
        sizes.gen_rounds,
        args.seed,
    );
    println!(
        "  sim  generated   : {gen_gates} gates, {gen_events} events in {gen_secs:.4} s  ({gen_rate:.0} events/s)"
    );

    let campaign = measure_campaign(sizes.campaign_jobs, args.seed);
    for (threads, ms) in &campaign {
        println!("  campaign {threads}t      : {ms:.2} ms  (digest invariant held)");
    }

    let (fleet_node_epochs, fleet_events, fleet_secs, fleet_ne_rate, fleet_ev_rate) =
        measure_fleet(sizes.fleet_nodes, sizes.fleet_epochs, args.smoke, args.seed);
    println!(
        "  fleet {} nodes  : {fleet_node_epochs} node-epochs, {fleet_events} events in {fleet_secs:.4} s  ({fleet_ne_rate:.0} node-epochs/s, {fleet_ev_rate:.0} events/s)",
        sizes.fleet_nodes
    );

    let pdes = measure_pdes(
        sizes.pdes_rows,
        sizes.pdes_cols,
        sizes.pdes_parts,
        sizes.pdes_ticks,
    );
    println!(
        "  pdes sequential  : {} gates, {} events in {:.4} s  ({:.0} events/s)",
        pdes.gates, pdes.events, pdes.seq_secs, pdes.seq_rate
    );
    for run in &pdes.runs {
        println!(
            "  pdes {}t          : {:.4} s  ({:.0} events/s, {:.2}x vs sequential, digest invariant held)",
            run.threads,
            run.secs,
            run.rate,
            run.rate / pdes.seq_rate
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"id\": {},\n", json_string("emc-perf")));
    json.push_str(&format!("  \"smoke\": {},\n", args.smoke));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!(
        "  \"sim_workload\": {},\n",
        json_string("SelfTimedOscillator + 8-bit ToggleRippleCounter, run_to_quiescence")
    ));
    json.push_str(&format!(
        "  \"sim_const_events\": {},\n",
        json_number(const_events as f64)
    ));
    json.push_str(&format!(
        "  \"sim_const_secs\": {},\n",
        json_number(const_secs)
    ));
    json.push_str(&format!(
        "  \"events_per_sec\": {},\n",
        json_number(const_rate)
    ));
    json.push_str(&format!(
        "  \"sim_ac_events\": {},\n",
        json_number(ac_events as f64)
    ));
    json.push_str(&format!("  \"sim_ac_secs\": {},\n", json_number(ac_secs)));
    json.push_str(&format!(
        "  \"ac_events_per_sec\": {},\n",
        json_number(ac_rate)
    ));
    json.push_str(&format!(
        "  \"verify_workload\": {},\n",
        json_string("builtin_suite state-graph exploration (exhaustive)")
    ));
    json.push_str(&format!(
        "  \"verify_states\": {},\n",
        json_number(states as f64)
    ));
    json.push_str(&format!(
        "  \"verify_secs\": {},\n",
        json_number(verify_secs)
    ));
    json.push_str(&format!(
        "  \"states_per_sec\": {},\n",
        json_number(state_rate)
    ));
    json.push_str(&format!(
        "  \"reduction_workload\": {},\n",
        json_string(
            "full vs POR+symmetry-reduced exploration (sram builtin, emc-gen pipelined array)"
        )
    ));
    for (name, fs, fsec, rs, rsec) in &reduction {
        let tag = name.replace('-', "_");
        json.push_str(&format!(
            "  \"red_{tag}_full_states\": {},\n",
            json_number(*fs as f64)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_full_secs\": {},\n",
            json_number(*fsec)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_full_states_per_sec\": {},\n",
            json_number(*fs as f64 / fsec)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_reduced_states\": {},\n",
            json_number(*rs as f64)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_reduced_secs\": {},\n",
            json_number(*rsec)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_reduced_states_per_sec\": {},\n",
            json_number(*rs as f64 / rsec)
        ));
        json.push_str(&format!(
            "  \"red_{tag}_state_reduction_factor\": {},\n",
            json_number(*fs as f64 / (*rs).max(1) as f64)
        ));
    }
    if let Some(kb) = rss_kb {
        json.push_str(&format!("  \"peak_rss_kb\": {},\n", json_number(kb as f64)));
    }
    json.push_str(&format!(
        "  \"gen_workload\": {},\n",
        json_string("emc-gen wchb_datapath, seeded environment replay")
    ));
    json.push_str(&format!(
        "  \"gen_gates\": {},\n",
        json_number(gen_gates as f64)
    ));
    json.push_str(&format!(
        "  \"gen_events\": {},\n",
        json_number(gen_events as f64)
    ));
    json.push_str(&format!("  \"gen_secs\": {},\n", json_number(gen_secs)));
    json.push_str(&format!(
        "  \"gen_events_per_sec\": {},\n",
        json_number(gen_rate)
    ));
    json.push_str(&format!(
        "  \"fleet_workload\": {},\n",
        json_string("emc-fleet sharded node simulation, 1 worker thread")
    ));
    json.push_str(&format!(
        "  \"fleet_nodes\": {},\n",
        json_number(f64::from(sizes.fleet_nodes))
    ));
    json.push_str(&format!(
        "  \"fleet_epochs\": {},\n",
        json_number(sizes.fleet_epochs as f64)
    ));
    json.push_str(&format!(
        "  \"fleet_events\": {},\n",
        json_number(fleet_events as f64)
    ));
    json.push_str(&format!("  \"fleet_secs\": {},\n", json_number(fleet_secs)));
    json.push_str(&format!(
        "  \"fleet_node_epochs_per_sec\": {},\n",
        json_number(fleet_ne_rate)
    ));
    json.push_str(&format!(
        "  \"fleet_events_per_sec\": {},\n",
        json_number(fleet_ev_rate)
    ));
    json.push_str(&format!(
        "  \"pdes_workload\": {},\n",
        json_string("Vdd-domain-partitioned WCHB pipeline array, reactive 4-phase driver")
    ));
    json.push_str(&format!(
        "  \"pdes_gates\": {},\n",
        json_number(pdes.gates as f64)
    ));
    json.push_str(&format!(
        "  \"pdes_partitions\": {},\n",
        json_number(pdes.parts as f64)
    ));
    json.push_str(&format!(
        "  \"pdes_events\": {},\n",
        json_number(pdes.events as f64)
    ));
    json.push_str(&format!(
        "  \"pdes_sync_rounds\": {},\n",
        json_number(pdes.sync_rounds as f64)
    ));
    json.push_str(&format!(
        "  \"pdes_crossing_events\": {},\n",
        json_number(pdes.crossing_events as f64)
    ));
    json.push_str(&format!(
        "  \"pdes_seq_secs\": {},\n",
        json_number(pdes.seq_secs)
    ));
    json.push_str(&format!(
        "  \"pdes_seq_events_per_sec\": {},\n",
        json_number(pdes.seq_rate)
    ));
    for run in &pdes.runs {
        json.push_str(&format!(
            "  \"pdes_secs_{}t\": {},\n",
            run.threads,
            json_number(run.secs)
        ));
        json.push_str(&format!(
            "  \"pdes_events_per_sec_{}t\": {},\n",
            run.threads,
            json_number(run.rate)
        ));
    }
    json.push_str(&format!(
        "  \"pdes_threads_max\": {},\n",
        json_number(pdes.runs.iter().map(|r| r.threads).max().unwrap_or(1) as f64)
    ));
    json.push_str(&format!(
        "  \"host_threads\": {},\n",
        json_number(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1) as f64
        )
    ));
    json.push_str("  \"pdes_digests_equal\": true,\n");
    let pdes_8t = pdes.runs.last().map_or(0.0, |r| r.rate);
    json.push_str(&format!(
        "  \"pdes_speedup_vs_gen_8t\": {},\n",
        json_number(pdes_8t / gen_rate)
    ));
    json.push_str(&format!(
        "  \"campaign_runs\": {},\n",
        json_number(sizes.campaign_jobs as f64)
    ));
    for (threads, ms) in &campaign {
        json.push_str(&format!(
            "  \"campaign_wall_ms_{threads}t\": {},\n",
            json_number(*ms)
        ));
    }
    json.push_str("  \"campaign_digests_equal\": true");

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base_events =
            json_f64_field(&text, "events_per_sec").expect("baseline JSON lacks events_per_sec");
        let base_states =
            json_f64_field(&text, "states_per_sec").expect("baseline JSON lacks states_per_sec");
        // Older baselines predate some workloads; guard each rate only
        // when the baseline actually records it.
        let base_fleet = json_f64_field(&text, "fleet_events_per_sec");
        let base_gen = json_f64_field(&text, "gen_events_per_sec");
        let base_pdes_seq = json_f64_field(&text, "pdes_seq_events_per_sec");
        let base_pdes_8t = json_f64_field(&text, "pdes_events_per_sec_8t");
        let guarded: Vec<(&str, f64, f64)> = [
            ("events_per_sec", base_events, const_rate),
            ("states_per_sec", base_states, state_rate),
        ]
        .into_iter()
        .chain(base_fleet.map(|b| ("fleet_events_per_sec", b, fleet_ev_rate)))
        .chain(base_gen.map(|b| ("gen_events_per_sec", b, gen_rate)))
        .chain(base_pdes_seq.map(|b| ("pdes_seq_events_per_sec", b, pdes.seq_rate)))
        .chain(base_pdes_8t.map(|b| ("pdes_events_per_sec_8t", b, pdes_8t)))
        .collect();
        let sim_speedup = const_rate / base_events;
        let verify_speedup = state_rate / base_states;
        let fleet_speedup = base_fleet.map(|b| fleet_ev_rate / b);
        match fleet_speedup {
            Some(f) => println!(
                "  vs baseline      : sim {sim_speedup:.2}x, verify {verify_speedup:.2}x, fleet {f:.2}x"
            ),
            None => println!("  vs baseline      : sim {sim_speedup:.2}x, verify {verify_speedup:.2}x"),
        }
        if let Some(pct) = args.guard {
            // Rates vary with the machine: a baseline captured on a
            // different core count makes the floor comparison suspect,
            // so say so before any breach assertion fires.
            let host_threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1) as f64;
            if let Some(base_host) = json_f64_field(&text, "host_threads") {
                if base_host != host_threads {
                    println!(
                        "  WARNING: baseline host_threads {base_host:.0} != current \
                         {host_threads:.0}; guard floors compare rates across different \
                         machines"
                    );
                }
            }
            let floor = 1.0 - pct / 100.0;
            let breaches: Vec<String> = guarded
                .iter()
                .filter(|(_, base, now)| now / base < floor)
                .map(|(name, base, now)| {
                    format!(
                        "{name} regressed {:.1}%: baseline {base:.0}/s, now {now:.0}/s",
                        (1.0 - now / base) * 100.0
                    )
                })
                .collect();
            assert!(
                breaches.is_empty(),
                "perf guard: {} of {} metrics breached the {pct}% floor vs {path}:\n  {}",
                breaches.len(),
                guarded.len(),
                breaches.join("\n  ")
            );
            println!(
                "  perf guard       : {} metrics within {pct}% of {path}",
                guarded.len()
            );
        }
        json.push_str(",\n");
        json.push_str(&format!(
            "  \"baseline_events_per_sec\": {},\n",
            json_number(base_events)
        ));
        json.push_str(&format!(
            "  \"baseline_states_per_sec\": {},\n",
            json_number(base_states)
        ));
        json.push_str(&format!(
            "  \"sim_speedup\": {},\n",
            json_number(sim_speedup)
        ));
        if let (Some(base), Some(speedup)) = (base_fleet, fleet_speedup) {
            json.push_str(&format!(
                "  \"baseline_fleet_events_per_sec\": {},\n",
                json_number(base)
            ));
            json.push_str(&format!("  \"fleet_speedup\": {},\n", json_number(speedup)));
        }
        json.push_str(&format!(
            "  \"verify_speedup\": {}",
            json_number(verify_speedup)
        ));
    }
    json.push_str("\n}\n");

    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  [saved {path}]");
    } else {
        println!("{json}");
    }
}
