//! S6 — body-bias leakage control (the low-level adaptation knob of
//! §II-B): reverse bias in idle, forward bias for sprints.

use emc_bench::Series;
use emc_device::{DeviceModel, ProcessParams};
use emc_sram::{CellKind, Sram, SramConfig};
use emc_units::Volts;

fn main() {
    let mut s = Series::new(
        "ablation_body_bias",
        "delay / leakage trade-off vs body bias at 0.4 V",
        &[
            "bias_mV",
            "inverter_delay_ns",
            "leakage_nA",
            "sram_retention_uW_0v4",
        ],
    );
    for bias_mv in [-400.0_f64, -200.0, 0.0, 200.0, 400.0] {
        let params = ProcessParams::umc90().at_body_bias(Volts(bias_mv / 1e3));
        let device = DeviceModel::new(params);
        let sram = Sram::new(SramConfig {
            device: device.clone(),
            ..SramConfig::paper_1kbit()
        });
        let retention = sram.energy_model().retention_power(
            sram.timing(),
            Volts(0.4),
            CellKind::SixT.leakage_factor(),
        );
        s.push(vec![
            bias_mv,
            device.inverter_delay(Volts(0.4)).0 * 1e9,
            device.leakage_current(Volts(0.4)).0 * 1e9,
            retention.0 * 1e6,
        ]);
    }
    s.emit();
    println!("Shape check: reverse bias (negative) slows sub-threshold gates");
    println!("but cuts leakage near-exponentially — the idle-mode knob; forward");
    println!("bias buys speed at a leakage premium — the sprint knob. Together");
    println!("with Vdd adaptation this spans the paper's low-level adaptation");
    println!("space (\"leakage control mechanisms such as body biasing\").");
}
