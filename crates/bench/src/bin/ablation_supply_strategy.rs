//! S1 — §II-B's two load strategies across harvest power density:
//! gated bursts at a stabilised nominal rail versus self-timed operation
//! directly off the varying rail.

use emc_bench::Series;
use emc_core::strategy::{simulate, SupplyStrategy};
use emc_units::{Seconds, Watts};

fn main() {
    let mut s = Series::new(
        "ablation_supply_strategy",
        "ops per joule vs harvest power density",
        &[
            "income_uW",
            "gated_ops_per_uJ",
            "variable_ops_per_uJ",
            "variable_mean_vdd_mV",
        ],
    );
    for income_uw in [1.0, 3.0, 10.0, 30.0, 100.0, 1000.0, 5000.0] {
        let income = Watts(income_uw * 1e-6);
        let d = Seconds(2.0);
        let dt = Seconds(1e-3);
        let gated = simulate(SupplyStrategy::gated_nominal_default(), income, d, dt);
        let variable = simulate(SupplyStrategy::VariableVdd, income, d, dt);
        s.push(vec![
            income_uw,
            gated.ops_per_joule() * 1e-6,
            variable.ops_per_joule() * 1e-6,
            variable.mean_vdd.0 * 1e3,
        ]);
    }
    s.emit();
    println!("Shape check: at microwatt densities the variable-Vdd self-timed");
    println!("strategy does several times the work per joule (it operates near");
    println!("the minimum-energy point and pays no regulator); at milliwatt");
    println!("densities the stabilised-nominal strategy catches up — the paper's");
    println!("case for power-adaptive hybrids.");
}
