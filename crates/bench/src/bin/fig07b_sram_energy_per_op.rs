//! In-text numbers of §III-A — energy per access across Vdd: 5.8 pJ per
//! 16-bit write at 1 V, 1.9 pJ at 0.4 V, minimum energy point at 0.4 V.

use emc_bench::Series;
use emc_sram::energy::Op;
use emc_sram::{Sram, SramConfig, TimingDiscipline};
use emc_units::Volts;

fn main() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    let mut s = Series::new(
        "fig07b",
        "energy per access vs Vdd (completion discipline)",
        &["vdd_V", "write_pJ", "read_pJ", "write_latency_ns"],
    );
    let mut v = 0.20;
    while v <= 1.0 + 1e-9 {
        let w = sram.write_at(Volts(v), 0, 0xFFFF, TimingDiscipline::Completion);
        let r = sram.read_at(Volts(v), 0, TimingDiscipline::Completion);
        s.push(vec![
            v,
            w.energy.0 * 1e12,
            r.energy.0 * 1e12,
            w.latency.0 * 1e9,
        ]);
        v += 0.05;
    }
    s.emit();

    let (mep, e_min) = sram.energy_model().minimum_energy_point(
        sram.timing(),
        Op::Write,
        Volts(0.15),
        Volts(1.0),
        400,
    );
    println!(
        "anchors: E_write(1.0 V) = {:.2} pJ (paper: 5.8), E_write(0.4 V) = {:.2} pJ (paper: 1.9)",
        sram.write_at(Volts(1.0), 0, 1, TimingDiscipline::Completion)
            .energy
            .0
            * 1e12,
        sram.write_at(Volts(0.4), 0, 1, TimingDiscipline::Completion)
            .energy
            .0
            * 1e12,
    );
    println!(
        "minimum energy point: {:.0} mV at {:.2} pJ (paper: 400 mV)",
        mep.0 * 1e3,
        e_min.0 * 1e12
    );
    println!();
    println!("Shape check: quadratic dynamic energy above the MEP, a leakage-");
    println!("driven blow-up below it — the canonical sub-threshold energy bowl.");
}
