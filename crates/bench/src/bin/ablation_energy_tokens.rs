//! S2 — energy-token scheduling \[15\] versus eager scheduling under a
//! sporadic harvest: completions, abortions and wasted energy.

use emc_bench::Series;
use emc_petri::TaskGraph;
use emc_sched::{EnergyTokenScheduler, GreedyScheduler};
use emc_units::{Joules, Seconds};

fn main() {
    let mut s = Series::new(
        "ablation_energy_tokens",
        "token vs greedy scheduling across burst sparsity",
        &[
            "burst_every_ticks",
            "token_done",
            "greedy_done",
            "greedy_aborts",
            "greedy_wasted_uJ",
            "token_per_mJ",
            "greedy_per_mJ",
        ],
    );
    for burst_every in [10usize, 20, 40, 80, 160] {
        let workload = || TaskGraph::fork_join(4, 3, Joules(10e-6), Seconds(4.0));
        let income = move |t: usize| {
            if t.is_multiple_of(burst_every) {
                Joules(12e-6)
            } else {
                Joules(0.3e-6)
            }
        };
        let token = EnergyTokenScheduler::run(workload(), Joules(40e-6), 2, 1.0, 4_000, income);
        let greedy = GreedyScheduler::run(workload(), Joules(40e-6), 2, 1.0, 4_000, income);
        s.push(vec![
            burst_every as f64,
            token.completed as f64,
            greedy.completed as f64,
            greedy.aborted as f64,
            greedy.wasted_energy.0 * 1e6,
            token.completions_per_joule() * 1e-3,
            greedy.completions_per_joule() * 1e-3,
        ]);
    }
    s.emit();
    println!("Shape check: as bursts get sparser the greedy scheduler browns");
    println!("out more often and throws energy away; the energy-token policy");
    println!("never aborts and keeps the higher completions-per-joule.");
}
