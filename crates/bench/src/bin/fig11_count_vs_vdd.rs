//! Fig. 11 — values of count against the initial voltage on the
//! sampling capacitor: the charge-to-code transfer curve.

use emc_bench::Series;
use emc_sensors::ChargeToDigitalConverter;
use emc_units::{Farads, Volts};

fn main() {
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 14);
    let mut s = Series::new(
        "fig11",
        "final code vs initial Vdd on Csample (2 pF)",
        &["vin_V", "code", "transitions", "charge_used_pC", "duration_us"],
    );
    for (v, r) in adc.code_curve(Volts(0.3), Volts(1.1), 17) {
        s.push(vec![
            v.0,
            r.code as f64,
            r.transitions as f64,
            r.charge_used.0 * 1e12,
            r.duration.0 * 1e6,
        ]);
    }
    s.emit();

    // Proportionality of charge to count along the curve.
    let a = adc.convert(Volts(0.6));
    let b = adc.convert(Volts(1.0));
    println!(
        "counts per picocoulomb: {:.1} at 0.6 V, {:.1} at 1.0 V",
        a.code as f64 / (a.charge_used.0 * 1e12),
        b.code as f64 / (b.charge_used.0 * 1e12)
    );
    println!();
    println!("Shape check: a monotone, repeatable code-vs-voltage curve (the");
    println!("paper's Fig. 11), with a stable counts-per-charge slope — the");
    println!("\"strong proportionality between the quantity of charge sampled…");
    println!("and the binary code accumulated in the counter\".");
}
