//! Fig. 11 — values of count against the initial voltage on the
//! sampling capacitor: the charge-to-code transfer curve.
//!
//! Runs as a campaign: one conversion per initial voltage, fanned out
//! by the engine (`--smoke`, `--threads`, `--seed`).

use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs};
use emc_sensors::ChargeToDigitalConverter;
use emc_sim::campaign::{run_campaign, RunReport};
use emc_units::{Farads, Volts};

fn main() {
    let args = CampaignArgs::parse(0xf15_11);
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 14);

    let (lo, hi) = (0.3, 1.1);
    let n = args.points(17, 5);
    let vins: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();

    let report = run_campaign(&vins, &args.config(), |&vin, ctx| {
        let r = adc.convert(Volts(vin));
        RunReport::from_values(
            ctx,
            vec![
                vin,
                r.code as f64,
                r.transitions as f64,
                r.charge_used.0 * 1e12,
                r.duration.0 * 1e6,
            ],
        )
    });

    let s = campaign_series(
        "fig11",
        "final code vs initial Vdd on Csample (2 pF)",
        &[
            "vin_V",
            "code",
            "transitions",
            "charge_used_pC",
            "duration_us",
        ],
        &report,
    );
    s.emit();
    print_campaign_summary(&report);

    // Proportionality of charge to count along the curve.
    let a = adc.convert(Volts(0.6));
    let b = adc.convert(Volts(1.0));
    println!(
        "counts per picocoulomb: {:.1} at 0.6 V, {:.1} at 1.0 V",
        a.code as f64 / (a.charge_used.0 * 1e12),
        b.code as f64 / (b.charge_used.0 * 1e12)
    );
    println!();
    println!("Shape check: a monotone, repeatable code-vs-voltage curve (the");
    println!("paper's Fig. 11), with a stable counts-per-charge slope — the");
    println!("\"strong proportionality between the quantity of charge sampled…");
    println!("and the binary code accumulated in the counter\".");
}
