//! `emc-stats` — run an instrumented scenario and export its telemetry.
//!
//! The observability counterpart of `emc-perf`: where `emc-perf` times
//! the hot kernels, `emc-stats` runs them with the [`emc_obs`] layer
//! enabled and renders the resulting [`Telemetry`] bundle. Because
//! telemetry is a pure function of workload + seed, the exported bytes
//! are **identical at any `--threads` count** — the integration test
//! `stats_determinism` pins this by diffing `--threads 1/2/8` output.
//!
//! Scenarios (`--scenario NAME`, default `all`):
//!
//! * `sim` — the self-timed counter rig with simulator obs enabled;
//! * `verify` — the built-in suite through the explorer's telemetry path;
//! * `sram` — a write/read mix across the Vdd range plus two
//!   supply-ramp accesses (which record sim-time spans);
//! * `sensor` — charge-to-digital conversions via
//!   `convert_instrumented`;
//! * `chain` — the harvester → reservoir → DC-DC chain snapshot;
//! * `campaign` — a Vdd-sweep campaign with per-run bundles merged in
//!   submission-index order;
//! * `pdes` — the Vdd-domain-partitioned parallel simulator on the
//!   shared pipeline-array rig, exporting the `sim.pdes.*` protocol
//!   counters (partitions, crossing nets, sync rounds) merged with the
//!   per-partition simulator bundles;
//! * `altlogic` — the alternative logic families' ledgers: an adiabatic
//!   cascade run and a charge-recovery session, with `recovered` energy
//!   booked next to `dissipated` and `leaked`;
//! * `all` — every scenario above, merged into one bundle.
//!
//! Output: a human summary by default, or exactly one of `--json`
//! (JSONL), `--chrome-trace` (trace-event JSON) or `--prom` (Prometheus
//! text). `--out PATH` writes the export to a file instead of stdout.
//! `--smoke` shrinks every workload for the tier-1 gate. Flag errors
//! panic, like the other campaign binaries.

use emc_altlogic::{AdiabaticPipeline, ChargeRecoveryMemory};
use emc_async::{SelfTimedOscillator, ToggleRippleCounter};
use emc_bench::{drive_array, pdes_array, pdes_parallel};
use emc_device::{AdiabaticModel, DeviceModel};
use emc_netlist::{GateKind, Netlist};
use emc_obs::{to_chrome_trace, to_jsonl, to_prometheus, EnergyKind, Telemetry};
use emc_power::{
    ClockShape, DcDcConverter, PowerChain, PowerClock, StorageCap, VibrationHarvester,
};
use emc_prng::{Rng, StdRng};
use emc_sensors::ChargeToDigitalConverter;
use emc_sim::campaign::{run_campaign, CampaignConfig, RunContext, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_sram::{Sram, SramConfig, TimingDiscipline};
use emc_units::{Farads, Hertz, Seconds, Volts, Watts, Waveform};
use emc_verify::builtin::builtin_suite;
use emc_verify::Explorer;

/// The self-timed counter rig of `emc-perf`, with observability on.
fn scenario_sim(smoke: bool) -> Telemetry {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let _cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(1.0)));
    sim.assign_all(d);
    osc.prime(&mut sim);
    sim.enable_obs();
    sim.start();
    let budget = if smoke { 2_000 } else { 100_000 };
    let fired = sim.run_to_quiescence(budget);
    assert!(fired > 0, "sim scenario fired no events");
    sim.telemetry()
}

/// The built-in verification suite through the telemetry explorer.
fn scenario_verify(smoke: bool) -> Telemetry {
    let mut merged = Telemetry::new();
    for circuit in &builtin_suite(smoke) {
        let ex = Explorer::new(&circuit.netlist, &circuit.env, &circuit.initial, 500_000);
        let (outcome, t) = ex.explore_with_telemetry();
        assert!(outcome.exhaustive, "{} exploration capped", circuit.name);
        merged.merge_from(&t);
    }
    merged
}

/// A deterministic write/read mix over the Vdd range, plus two accesses
/// under a rising supply so the span log is exercised.
fn scenario_sram(smoke: bool, seed: u64) -> Telemetry {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    sram.enable_obs();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = if smoke { 32 } else { 512 };
    for i in 0..n {
        let vdd = Volts(rng.gen_range(0.45..1.0));
        let addr = i % 64;
        let word = (rng.gen_range(0.0..65536.0)) as u64 & 0xFFFF;
        let w = sram.write_at(vdd, addr, word, TimingDiscipline::Completion);
        let r = sram.read_at(vdd, addr, TimingDiscipline::Completion);
        assert!(w.completed && r.completed, "completion access must finish");
    }
    // Fig. 7's ramp: a slow write under a depleted rail, a fast one
    // under a healthy rail — both land in the span log.
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.25),
        (Seconds(30e-6), 0.25),
        (Seconds(32e-6), 1.0),
    ]);
    let res = Seconds(50e-9);
    let horizon = Seconds(1.0);
    sram.write_under(&supply, Seconds(0.0), 0, 0xAAAA, res, horizon);
    sram.read_under(&supply, Seconds(40e-6), 0, res, horizon);
    sram.telemetry()
}

/// Charge-to-digital conversions with the sensor's own metrics.
fn scenario_sensor(smoke: bool) -> Telemetry {
    let conv = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    let inputs: &[f64] = if smoke { &[0.6] } else { &[0.5, 0.8, 1.0] };
    let mut merged = Telemetry::new();
    for &vin in inputs {
        let (r, t) = conv.convert_instrumented(Volts(vin));
        assert!(r.code > 0, "conversion produced no counts at {vin} V");
        merged.merge_from(&t);
    }
    merged
}

/// The composed power chain under a pre-charge-then-load profile.
fn scenario_chain(smoke: bool) -> Telemetry {
    let h = VibrationHarvester::new(Hertz(120.0), Watts(100e-6), 8.0);
    let mut chain = PowerChain::new(
        h.into_source(Hertz(120.0)),
        StorageCap::new(Farads(10e-6), Volts(0.0), Volts(1.2)),
        DcDcConverter::new(Volts(0.5)),
    );
    let ticks = if smoke { 100 } else { 1_000 };
    for i in 0..ticks {
        let load = if i < ticks / 2 {
            Watts(0.0)
        } else {
            Watts(40e-6)
        };
        chain.tick(Seconds(1e-3), load);
    }
    chain.telemetry()
}

/// One campaign job: the ring-oscillator burst rig of `emc-perf`, with
/// observability enabled so the run carries a telemetry bundle.
fn campaign_worker(vdd: &f64, ctx: &RunContext) -> RunReport {
    let mut nl = Netlist::new();
    let en = nl.input("en");
    let g1 = nl.gate(GateKind::Nand, &[en, en], "g1");
    let g2 = nl.gate(GateKind::Inv, &[g1], "g2");
    let g3 = nl.gate(GateKind::Inv, &[g2], "g3");
    nl.connect_feedback(g1, g3);
    nl.mark_output(g3);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(*vdd)));
    sim.assign_all(d);
    sim.set_initial(g1, true);
    sim.set_initial(g3, true);
    sim.watch(g3);
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut t = 0.0;
    let mut level = true;
    for _ in 0..8 {
        sim.schedule_input(en, Seconds(t), level);
        t += rng.gen_range(1e-9..10e-9);
        level = !level;
    }
    sim.schedule_input(en, Seconds(t), true);
    sim.enable_obs();
    sim.start();
    let stats = sim.run_until(Seconds(t + 40e-9));
    RunReport::from_sim(&sim, ctx, stats, vec![*vdd, stats.fired as f64])
}

/// The Vdd-domain-partitioned parallel simulator on the shared
/// pipeline-array rig, with per-partition observability enabled. The
/// exported bundle — per-partition simulator metrics plus the
/// `sim.pdes.*` protocol counters — is a pure function of the workload,
/// so it is byte-identical at any `--threads` count: the determinism
/// demonstration in telemetry form.
fn scenario_pdes(smoke: bool, threads: usize) -> Telemetry {
    let (rows, cols, parts, ticks) = if smoke { (4, 3, 2, 7) } else { (8, 6, 3, 13) };
    let rig = pdes_array(rows, cols, parts);
    let mut sim = pdes_parallel(&rig, threads.max(1), true);
    let fired = drive_array(&mut sim, &rig, ticks);
    assert!(fired > 0, "pdes scenario fired no events");
    sim.telemetry()
}

/// A Vdd-sweep campaign; per-run bundles merge in submission order, so
/// the aggregate is byte-identical at any thread count.
fn scenario_campaign(smoke: bool, threads: usize, seed: u64) -> Telemetry {
    let jobs = if smoke { 4 } else { 16 };
    let vdds: Vec<f64> = (0..jobs).map(|i| 0.4 + 0.05 * i as f64).collect();
    let cfg = CampaignConfig::new(seed).threads(threads);
    let report = run_campaign(&vdds, &cfg, campaign_worker);
    report.merged_telemetry()
}

/// The alternative logic families' energy ledgers: a phase-disciplined
/// adiabatic run and a charge-recovery session, booked through their
/// telemetry hooks (`recovered` next to `dissipated`/`leaked`).
fn scenario_altlogic(smoke: bool) -> Telemetry {
    let clock = PowerClock::symmetric(Volts(0.5), Seconds(50e-9), 4, ClockShape::Trapezoid);
    let pipe = AdiabaticPipeline::new(
        clock,
        AdiabaticModel::new(DeviceModel::umc90()),
        3,
        24,
        Farads(2e-15),
    );
    let run = pipe.run(if smoke { 8 } else { 64 });
    assert!(
        run.clean(),
        "adiabatic schedule must satisfy the discipline"
    );
    let mut t = pipe.telemetry(&run);
    let mem = ChargeRecoveryMemory::new(Farads(2e-12), 12, 16, 0.8);
    let session = mem.run(Volts(0.8), if smoke { 2 } else { 8 });
    t.merge_from(&mem.telemetry(&session));
    t
}

fn run_scenario(name: &str, smoke: bool, threads: usize, seed: u64) -> Telemetry {
    match name {
        "sim" => scenario_sim(smoke),
        "verify" => scenario_verify(smoke),
        "sram" => scenario_sram(smoke, seed),
        "sensor" => scenario_sensor(smoke),
        "chain" => scenario_chain(smoke),
        "campaign" => scenario_campaign(smoke, threads, seed),
        "pdes" => scenario_pdes(smoke, threads),
        "altlogic" => scenario_altlogic(smoke),
        "all" => {
            let mut t = scenario_sim(smoke);
            t.merge_from(&scenario_verify(smoke));
            t.merge_from(&scenario_sram(smoke, seed));
            t.merge_from(&scenario_sensor(smoke));
            t.merge_from(&scenario_chain(smoke));
            t.merge_from(&scenario_campaign(smoke, threads, seed));
            t.merge_from(&scenario_pdes(smoke, threads));
            t.merge_from(&scenario_altlogic(smoke));
            t
        }
        other => {
            panic!(
                "unknown scenario {other:?} (sim, verify, sram, sensor, chain, campaign, pdes, \
                 altlogic, all)"
            )
        }
    }
}

/// The default human rendering: every metric, ledger account and the
/// span count, in registration order (fully deterministic).
fn summarize(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");
    for c in t.metrics.counters() {
        out.push_str(&format!("  counter   {:<36} {}\n", c.id, c.value));
    }
    for g in t.metrics.gauges() {
        if let Some(v) = g.value {
            out.push_str(&format!("  gauge     {:<36} {v}\n", g.id));
        }
    }
    for h in t.metrics.histograms() {
        out.push_str(&format!(
            "  histogram {:<36} count={} sum={}\n",
            h.id, h.count, h.sum
        ));
    }
    for e in t.energy.entries() {
        out.push_str(&format!(
            "  energy    {:<36} {} J ({})\n",
            e.account,
            e.joules,
            e.kind.label()
        ));
    }
    out.push_str(&format!("  spans     {}\n", t.spans.len()));
    for kind in [
        EnergyKind::Dissipated,
        EnergyKind::Leaked,
        EnergyKind::Harvested,
        EnergyKind::Stored,
    ] {
        out.push_str(&format!(
            "  total {:<10} {} J\n",
            kind.label(),
            t.energy.total(kind)
        ));
    }
    out
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Summary,
    Jsonl,
    ChromeTrace,
    Prometheus,
}

struct Args {
    smoke: bool,
    scenario: String,
    threads: usize,
    seed: u64,
    format: Format,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        scenario: "all".to_owned(),
        threads: 0,
        seed: 2011,
        format: Format::Summary,
        out: None,
    };
    let set_format = |args: &mut Args, f: Format| {
        assert!(
            args.format == Format::Summary,
            "--json, --chrome-trace and --prom are mutually exclusive"
        );
        args.format = f;
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => set_format(&mut args, Format::Jsonl),
            "--chrome-trace" => set_format(&mut args, Format::ChromeTrace),
            "--prom" => set_format(&mut args, Format::Prometheus),
            "--scenario" => {
                args.scenario = it.next().expect("--scenario needs a name");
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                args.threads = v.parse().expect("--threads takes an integer");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed takes a u64");
            }
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            other => panic!(
                "unknown flag {other} (try --smoke, --scenario, --threads, --seed, \
                 --json, --chrome-trace, --prom, --out)"
            ),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let t = run_scenario(&args.scenario, args.smoke, args.threads, args.seed);
    assert!(
        !t.metrics.is_empty() || !t.energy.is_empty(),
        "scenario {} produced no telemetry",
        args.scenario
    );
    let rendered = match args.format {
        Format::Summary => summarize(&t),
        Format::Jsonl => to_jsonl(&t),
        Format::ChromeTrace => to_chrome_trace(&t),
        Format::Prometheus => to_prometheus(&t),
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("[saved {path}]");
        }
        None => print!("{rendered}"),
    }
}
