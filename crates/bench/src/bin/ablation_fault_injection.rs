//! S10 — dependability under stuck-at faults (§I's energy/performance/
//! dependability interplay): speed-independent circuits deadlock rather
//! than lie; bundled circuits corrupt silently.

use emc_async::{BundledPipeline, DualRailPipeline};
use emc_bench::Series;
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Seconds, Waveform};

#[derive(Default, Debug)]
struct Tally {
    runs: usize,
    stalled: usize,
    silent_corruption: usize,
    unaffected: usize,
}

fn main() {
    let words = [2u64, 1, 3, 2, 0, 3];
    let mut si = Tally::default();
    let mut bundled = Tally::default();

    // Inject a stuck-at-0 on every non-source gate of each design.
    {
        let probe_nl = {
            let mut nl = Netlist::new();
            let _ = DualRailPipeline::build_wide(&mut nl, 3, 2, "p");
            nl
        };
        let gates = probe_nl.gate_count();
        for victim in 0..gates {
            let mut nl = Netlist::new();
            let p = DualRailPipeline::build_wide(&mut nl, 3, 2, "p");
            if nl.gate_ref(nl.gate_id(victim)).kind().is_source() {
                continue;
            }
            let mut sim = Simulator::new(nl, DeviceModel::umc90());
            let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.8)));
            sim.assign_all(d);
            sim.start();
            sim.run_to_quiescence(100_000);
            sim.inject_stuck_at(sim.netlist().gate_id(victim), false);
            let out = p.transfer(&mut sim, &words, Seconds(50e-6));
            si.runs += 1;
            let wrong = out.received.iter().zip(&words).any(|(g, w)| g != w);
            if wrong {
                si.silent_corruption += 1;
            } else if !out.completed {
                si.stalled += 1;
            } else {
                si.unaffected += 1;
            }
        }
    }
    {
        let probe_nl = {
            let mut nl = Netlist::new();
            let _ = BundledPipeline::build_wide(&mut nl, 2, 2, 3, 2.0, "b");
            nl
        };
        for victim in 0..probe_nl.gate_count() {
            let mut nl = Netlist::new();
            let p = BundledPipeline::build_wide(&mut nl, 2, 2, 3, 2.0, "b");
            if nl.gate_ref(nl.gate_id(victim)).kind().is_source() {
                continue;
            }
            let mut sim = Simulator::new(nl, DeviceModel::umc90());
            let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(1.0)));
            sim.assign_all(d);
            sim.start();
            sim.run_to_quiescence(100_000);
            sim.inject_stuck_at(sim.netlist().gate_id(victim), false);
            let out = p.transfer(&mut sim, &words, Seconds(50e-6));
            bundled.runs += 1;
            let wrong = out.received.iter().zip(&words).any(|(g, w)| g != w)
                || (out.completed && out.received.len() != words.len());
            if wrong {
                bundled.silent_corruption += 1;
            } else if !out.completed {
                bundled.stalled += 1;
            } else {
                bundled.unaffected += 1;
            }
        }
    }

    let mut s = Series::new(
        "ablation_fault_injection",
        "stuck-at-0 on every gate: outcome distribution per design style",
        &[
            "design_is_bundled",
            "faults_injected",
            "stalled_detected",
            "silent_corruption",
            "unaffected",
        ],
    );
    s.push(vec![
        0.0,
        si.runs as f64,
        si.stalled as f64,
        si.silent_corruption as f64,
        si.unaffected as f64,
    ]);
    s.push(vec![
        1.0,
        bundled.runs as f64,
        bundled.stalled as f64,
        bundled.silent_corruption as f64,
        bundled.unaffected as f64,
    ]);
    s.emit();
    println!("SI pipeline:      {si:?}");
    println!("bundled pipeline: {bundled:?}");
    println!();
    println!("Shape check: the speed-independent design converts every");
    println!("observable fault into a detectable stall (zero silent data");
    println!("corruption); the bundled design's matched delays fire anyway and");
    println!("a large fraction of faults deliver wrong words with a clean");
    println!("handshake — the dependability half of the paper's self-timing");
    println!("argument.");
}
