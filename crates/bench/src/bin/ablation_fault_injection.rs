//! S10 — dependability under stuck-at faults (§I's energy/performance/
//! dependability interplay): speed-independent circuits deadlock rather
//! than lie; bundled circuits corrupt silently.
//!
//! Every (design, victim-gate) pair is one independent simulation, so
//! the whole injection matrix runs as a campaign (`--smoke` injects on
//! every 4th gate; `--threads`, `--seed` as usual).

use emc_async::{BundledPipeline, DualRailPipeline};
use emc_bench::{print_campaign_summary, CampaignArgs, Series};
use emc_device::DeviceModel;
use emc_netlist::Netlist;
use emc_sim::campaign::{run_campaign, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Seconds, Waveform};

#[derive(Default, Debug)]
struct Tally {
    runs: usize,
    stalled: usize,
    silent_corruption: usize,
    unaffected: usize,
}

impl Tally {
    fn add(&mut self, outcome: f64) {
        self.runs += 1;
        match outcome as u32 {
            0 => self.unaffected += 1,
            1 => self.stalled += 1,
            _ => self.silent_corruption += 1,
        }
    }

    fn row(&self, is_bundled: f64) -> Vec<f64> {
        vec![
            is_bundled,
            self.runs as f64,
            self.stalled as f64,
            self.silent_corruption as f64,
            self.unaffected as f64,
        ]
    }
}

/// One injection run: which design, which gate to break.
#[derive(Clone, Copy)]
struct Injection {
    bundled: bool,
    victim: usize,
}

fn build(bundled: bool) -> (Netlist, Box<dyn Fn(&mut Simulator) -> (Vec<u64>, bool)>) {
    let words = [2u64, 1, 3, 2, 0, 3];
    let mut nl = Netlist::new();
    if bundled {
        let p = BundledPipeline::build_wide(&mut nl, 2, 2, 3, 2.0, "b");
        (
            nl,
            Box::new(move |sim| {
                let out = p.transfer(sim, &words, Seconds(50e-6));
                (out.received, out.completed)
            }),
        )
    } else {
        let p = DualRailPipeline::build_wide(&mut nl, 3, 2, "p");
        (
            nl,
            Box::new(move |sim| {
                let out = p.transfer(sim, &words, Seconds(50e-6));
                (out.received, out.completed)
            }),
        )
    }
}

fn main() {
    let args = CampaignArgs::parse(0xab1a_710);
    let words = [2u64, 1, 3, 2, 0, 3];

    // Enumerate the injection matrix: every non-source gate of each
    // design (every 4th under --smoke).
    let stride = if args.smoke { 4 } else { 1 };
    let mut jobs: Vec<Injection> = Vec::new();
    for bundled in [false, true] {
        let (probe_nl, _) = build(bundled);
        for victim in (0..probe_nl.gate_count()).step_by(stride) {
            if probe_nl
                .gate_ref(probe_nl.gate_id(victim))
                .kind()
                .is_source()
            {
                continue;
            }
            jobs.push(Injection { bundled, victim });
        }
    }

    let report = run_campaign(&jobs, &args.config(), |job, ctx| {
        let (nl, transfer) = build(job.bundled);
        let vdd = if job.bundled { 1.0 } else { 0.8 };
        let mut sim = Simulator::new(nl, DeviceModel::umc90());
        let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
        sim.assign_all(d);
        sim.start();
        sim.run_to_quiescence(100_000);
        sim.inject_stuck_at(sim.netlist().gate_id(job.victim), false);
        let (received, completed) = transfer(&mut sim);
        let wrong = received.iter().zip(&words).any(|(g, w)| g != w)
            || (job.bundled && completed && received.len() != words.len());
        let outcome = if wrong {
            2.0 // silent corruption
        } else if !completed {
            1.0 // detectable stall
        } else {
            0.0 // unaffected
        };
        let stats = emc_sim::RunStats {
            fired: sim.total_transitions(),
            hazards: sim.hazards().len() as u64,
        };
        RunReport::from_sim(
            &sim,
            ctx,
            stats,
            vec![job.bundled as u8 as f64, job.victim as f64, outcome],
        )
    });

    let mut si = Tally::default();
    let mut bundled = Tally::default();
    for row in report.rows() {
        if row[0] == 0.0 {
            si.add(row[2]);
        } else {
            bundled.add(row[2]);
        }
    }

    let mut s = Series::new(
        "ablation_fault_injection",
        "stuck-at-0 on every gate: outcome distribution per design style",
        &[
            "design_is_bundled",
            "faults_injected",
            "stalled_detected",
            "silent_corruption",
            "unaffected",
        ],
    );
    s.push(si.row(0.0));
    s.push(bundled.row(1.0));
    s.emit();
    print_campaign_summary(&report);
    println!("SI pipeline:      {si:?}");
    println!("bundled pipeline: {bundled:?}");
    println!();
    println!("Shape check: the speed-independent design converts every");
    println!("observable fault into a detectable stall (zero silent data");
    println!("corruption); the bundled design's matched delays fire anyway and");
    println!("a large fraction of faults deliver wrong words with a clean");
    println!("handshake — the dependability half of the paper's self-timing");
    println!("argument.");
}
