//! S7 — temperature behaviour of the sub-threshold stack: gate speed,
//! the SRAM minimum-energy point, and the reference-free sensor's
//! thermal drift (its honest remaining dependence).

use emc_bench::Series;
use emc_device::{DeviceModel, ProcessParams};
use emc_sensors::ReferenceFreeSensor;
use emc_sram::energy::Op;
use emc_sram::{EnergyCalibration, SramTiming};
use emc_units::{Kelvin, Volts};

fn main() {
    let mut s = Series::new(
        "ablation_temperature",
        "temperature sweep: sub-threshold speed, SRAM MEP, sensor drift",
        &["temp_K", "inv_delay_0v3_ns", "mep_mV", "sensor_drift_mV"],
    );
    // The sensor is calibrated once, at room temperature.
    let sensor = ReferenceFreeSensor::new(8);
    for t in [260.0, 280.0, 300.0, 320.0, 340.0, 360.0] {
        let params = ProcessParams::umc90().at_temperature(Kelvin(t));
        let device = DeviceModel::new(params);
        let inv = device.inverter_delay(Volts(0.3));
        let timing = SramTiming::new(device.clone(), 64, 1, emc_sram::CellKind::SixT);
        // Re-solve the energy anchors for this die temperature and find
        // its minimum-energy point.
        let mep = EnergyCalibration::solve(&timing, 2)
            .map(|cal| {
                cal.minimum_energy_point(&timing, Op::Write, Volts(0.15), Volts(1.0), 300)
                    .0
                     .0
                    * 1e3
            })
            .unwrap_or(f64::NAN);
        let drift = sensor.worst_case_error_at(device).0 * 1e3;
        s.push(vec![t, inv.0 * 1e9, mep, drift]);
    }
    s.emit();
    println!("Shape check: heat makes sub-threshold logic *faster* (Vt drops,");
    println!("φt rises), shifts the SRAM minimum-energy point, and drifts the");
    println!("room-temperature-calibrated reference-free sensor well past its");
    println!("10 mV spec — temperature is the one reference the sensor still");
    println!("implicitly carries.");
}
