//! Fig. 5 — mismatch between the scaling of SRAM and logic: read delay
//! in inverter units across the Vdd range, anchored at the paper's
//! published points (50 @ 1 V, 158 @ 190 mV).

use emc_bench::Series;
use emc_device::{DeviceModel, SramLogicCalibration};
use emc_units::Volts;

fn main() {
    let cal = SramLogicCalibration::solve(DeviceModel::umc90());
    let mut s = Series::new(
        "fig05",
        "SRAM read delay in inverter delays vs Vdd",
        &["vdd_V", "ratio_inverters", "abs_read_delay_ns"],
    );
    for (v, ratio) in cal.mismatch_series(Volts(0.15), Volts(1.0), 18) {
        s.push(vec![v.0, ratio, cal.sram_read_delay(v).0 * 1e9]);
    }
    s.emit();
    println!(
        "anchors: ratio(1.0 V) = {:.1} (paper: 50), ratio(0.19 V) = {:.1} (paper: 158)",
        cal.delay_ratio(Volts(1.0)),
        cal.delay_ratio(Volts(0.19))
    );
    println!(
        "solved stack-effect threshold elevation: {:.0} mV; cap/drive scale {:.1}",
        cal.delta_vt().0 * 1e3,
        cal.cap_scale()
    );
    println!();
    println!("Shape check: monotone growth as Vdd falls — a delay line matched");
    println!("to the SRAM at nominal supply is ~3.2x too short at 190 mV, which");
    println!("is why the paper abandons delay lines for completion detection.");
}
