//! Fig. 5 — mismatch between the scaling of SRAM and logic: read delay
//! in inverter units across the Vdd range, anchored at the paper's
//! published points (50 @ 1 V, 158 @ 190 mV).
//!
//! Runs as a campaign: one run per Vdd point, fanned out by the engine
//! (`--smoke`, `--threads`, `--seed`; see `emc_bench::campaign`).

use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs};
use emc_device::{DeviceModel, SramLogicCalibration};
use emc_sim::campaign::{run_campaign, RunReport};
use emc_units::Volts;

fn main() {
    let args = CampaignArgs::parse(0xf15_05);
    let cal = SramLogicCalibration::solve(DeviceModel::umc90());

    let (lo, hi) = (0.15, 1.0);
    let n = args.points(18, 5);
    let vdds: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();

    let report = run_campaign(&vdds, &args.config(), |&vdd, ctx| {
        let v = Volts(vdd);
        RunReport::from_values(
            ctx,
            vec![vdd, cal.delay_ratio(v), cal.sram_read_delay(v).0 * 1e9],
        )
    });

    let s = campaign_series(
        "fig05",
        "SRAM read delay in inverter delays vs Vdd",
        &["vdd_V", "ratio_inverters", "abs_read_delay_ns"],
        &report,
    );
    s.emit();
    print_campaign_summary(&report);
    println!(
        "anchors: ratio(1.0 V) = {:.1} (paper: 50), ratio(0.19 V) = {:.1} (paper: 158)",
        cal.delay_ratio(Volts(1.0)),
        cal.delay_ratio(Volts(0.19))
    );
    println!(
        "solved stack-effect threshold elevation: {:.0} mV; cap/drive scale {:.1}",
        cal.delta_vt().0 * 1e3,
        cal.cap_scale()
    );
    println!();
    println!("Shape check: monotone growth as Vdd falls — a delay line matched");
    println!("to the SRAM at nominal supply is ~3.2x too short at 190 mV, which");
    println!("is why the paper abandons delay lines for completion detection.");
}
