//! S8 — §II-B's opening contrast: battery supply (finite energy, ample
//! stable power) versus harvester supply (unbounded energy, meagre
//! unstable power), measured as work over deployment lifetime.

use emc_bench::Series;
use emc_power::{Battery, DcDcConverter, HarvestSource, PowerChain, StorageCap};
use emc_units::{Farads, Joules, Seconds, Volts, Watts, Waveform};

fn main() {
    // The load: a duty-cycled sensing task needing 50 µJ per activation.
    let task_energy = Joules(50e-6);

    let mut s = Series::new(
        "ablation_battery_vs_harvester",
        "activations achievable vs deployment length (coin cell vs 50 µW harvester)",
        &[
            "deployment_days",
            "battery_activations",
            "harvester_activations",
        ],
    );
    for days in [30.0, 180.0, 365.0, 1000.0, 3000.0, 10000.0] {
        let seconds = days * 86_400.0;

        // The application wants one activation per second, both supplies.
        let wanted = seconds;

        // Battery: everything it has, through a 90 % regulator, until
        // empty — a fixed budget independent of deployment length.
        let battery = Battery::coin_cell();
        let battery_budget = battery.capacity().0 * 0.9;
        let battery_activations = (battery_budget / task_energy.0).min(wanted).floor();

        // Harvester: 50 µW average forever, end-to-end ≈ 80 % efficient.
        let mut chain = PowerChain::new(
            HarvestSource::Profile(Waveform::constant(50e-6)),
            StorageCap::new(Farads(47e-6), Volts(0.2), Volts(1.1)),
            DcDcConverter::new(Volts(0.5)),
        );
        // Simulate a representative hour and scale (constant income).
        let mut delivered_hour = Joules(0.0);
        for _ in 0..3_600 {
            delivered_hour += chain.tick(Seconds(1.0), Watts(40e-6));
        }
        let delivered_total = delivered_hour.0 * (seconds / 3_600.0);
        let harvester_activations = (delivered_total / task_energy.0).min(wanted).floor();

        s.push(vec![days, battery_activations, harvester_activations]);
    }
    s.emit();
    println!("Shape check: at one activation per second, the coin cell's fixed");
    println!("~44M-activation budget serves the demand outright for short");
    println!("deployments and then stops dead (~500 days); the harvester's");
    println!("meagre 50 µW serves a lower steady rate but compounds forever, so");
    println!("the curves cross within two years — the paper's case for");
    println!("designing electronics for EH supplies in the first place.");
}
