//! Fig. 2 — power-proportional versus power-efficient design: QoS vs
//! Vdd for Design 1 (speed-independent dual-rail), Design 2 (bundled
//! data) and the hybrid that tracks the upper envelope.
//!
//! Each grid point measures three gate-level simulations, so the sweep
//! runs as a campaign (`--smoke`, `--threads`, `--seed`).

use emc_bench::{campaign_series, print_campaign_summary, CampaignArgs};
use emc_core::hybrid::HybridController;
use emc_core::qos::{measure_pipeline_qos, DesignStyle};
use emc_sim::campaign::{run_campaign, RunReport};
use emc_units::Volts;

fn main() {
    let args = CampaignArgs::parse(7);
    let full = [0.14, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50, 0.70, 1.0];
    let smoke = [0.16, 0.30, 1.0];
    let grid: &[f64] = if args.smoke { &smoke } else { &full };
    let seed = args.seed;
    let ctl = HybridController::new_default();

    let report = run_campaign(grid, &args.config(), |&v, ctx| {
        let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(v), seed);
        let d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(v), seed);
        let hybrid = ctl.qos_at(Volts(v), seed);
        RunReport::from_values(
            ctx,
            vec![
                v,
                d1.qos(),
                d1.qos_per_watt(),
                d2.qos(),
                d2.qos_per_watt(),
                hybrid.qos(),
            ],
        )
    });

    let s = campaign_series(
        "fig02",
        "QoS (correct tokens/s) and QoS/W vs Vdd per design style",
        &[
            "vdd_V",
            "d1_qos",
            "d1_qos_per_W",
            "d2_qos",
            "d2_qos_per_W",
            "hybrid_qos",
        ],
        &report,
    );
    s.emit();
    print_campaign_summary(&report);
    println!("Shape check: Design 1 delivers QoS at voltages where Design 2's");
    println!("correct fraction collapses; Design 2 has the higher QoS/W at");
    println!("nominal supply; the hybrid follows whichever is better (switch");
    println!("threshold {:.0} mV).", ctl.threshold().0 * 1e3);
}
