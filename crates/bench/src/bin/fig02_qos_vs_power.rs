//! Fig. 2 — power-proportional versus power-efficient design: QoS vs
//! Vdd for Design 1 (speed-independent dual-rail), Design 2 (bundled
//! data) and the hybrid that tracks the upper envelope.

use emc_bench::Series;
use emc_core::hybrid::HybridController;
use emc_core::qos::{measure_pipeline_qos, DesignStyle};
use emc_units::Volts;

fn main() {
    let grid = [0.14, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50, 0.70, 1.0];
    let seed = 7;
    let ctl = HybridController::new_default();

    let mut s = Series::new(
        "fig02",
        "QoS (correct tokens/s) and QoS/W vs Vdd per design style",
        &[
            "vdd_V",
            "d1_qos",
            "d1_qos_per_W",
            "d2_qos",
            "d2_qos_per_W",
            "hybrid_qos",
        ],
    );
    for &v in &grid {
        let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(v), seed);
        let d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(v), seed);
        let hybrid = ctl.qos_at(Volts(v), seed);
        s.push(vec![
            v,
            d1.qos(),
            d1.qos_per_watt(),
            d2.qos(),
            d2.qos_per_watt(),
            hybrid.qos(),
        ]);
    }
    s.emit();
    println!("Shape check: Design 1 delivers QoS at voltages where Design 2's");
    println!("correct fraction collapses; Design 2 has the higher QoS/W at");
    println!("nominal supply; the hybrid follows whichever is better (switch");
    println!("threshold {:.0} mV).", ctl.threshold().0 * 1e3);
}
