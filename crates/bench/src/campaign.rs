//! Glue between the [`emc_sim::campaign`] engine and the figure
//! binaries: a tiny CLI contract and a `CampaignReport → Series`
//! converter.
//!
//! Every campaign-backed binary understands three flags:
//!
//! * `--smoke` — shrink the sweep to a few points so CI can exercise
//!   the full binary path in well under a second;
//! * `--threads N` — worker thread count (`0` = one per core, the
//!   default), which by the engine's determinism guarantee changes
//!   wall-clock only, never output;
//! * `--seed S` — override the campaign seed (each binary carries a
//!   fixed default so figures are reproducible by default).
//!
//! After the sweep the binary prints a one-line campaign summary —
//! runs, threads, wall-clock, digest — so serial-vs-parallel timings
//! and byte-identity can be read straight off two invocations.

use emc_sim::campaign::{CampaignConfig, CampaignReport};

use crate::Series;

/// Parsed command-line contract of a campaign-backed figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignArgs {
    /// `--smoke`: run a reduced sweep for CI.
    pub smoke: bool,
    /// `--threads N`: worker count (`0` = one per core).
    pub threads: usize,
    /// `--seed S`: campaign seed (default supplied by the binary).
    pub seed: u64,
}

impl CampaignArgs {
    /// Parses `std::env::args` with `default_seed` as the campaign seed
    /// unless `--seed` overrides it.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown or malformed flags —
    /// these are figure binaries, not a public CLI, so fail loudly.
    pub fn parse(default_seed: u64) -> Self {
        Self::from_iter(std::env::args().skip(1), default_seed)
    }

    fn from_iter(args: impl Iterator<Item = String>, default_seed: u64) -> Self {
        let mut out = Self {
            smoke: false,
            threads: 0,
            seed: default_seed,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => out.smoke = true,
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    out.threads = v.parse().expect("--threads takes an integer");
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed takes a u64");
                }
                other => {
                    panic!("unknown flag {other:?}; usage: [--smoke] [--threads N] [--seed S]")
                }
            }
        }
        out
    }

    /// The engine config these args describe.
    pub fn config(&self) -> CampaignConfig {
        CampaignConfig::new(self.seed).threads(self.threads)
    }

    /// `smoke.max(3)`-style helper: picks the sweep point count, using
    /// `smoke_points` when `--smoke` is set.
    pub fn points(&self, full: usize, smoke_points: usize) -> usize {
        if self.smoke {
            smoke_points
        } else {
            full
        }
    }
}

/// Converts an aggregated campaign into a figure series: one row per
/// run, straight from each run's `values`.
pub fn campaign_series(id: &str, title: &str, columns: &[&str], report: &CampaignReport) -> Series {
    let mut s = Series::new(id, title, columns);
    for row in report.rows() {
        s.push(row);
    }
    s
}

/// Prints the one-line summary every campaign binary ends with:
/// determinism digest plus the numbers needed for serial-vs-parallel
/// wall-clock comparisons.
pub fn print_campaign_summary(report: &CampaignReport) {
    println!(
        "  [campaign: {} runs on {} thread(s), {:.1} ms wall, {} events, digest {:016x}]",
        report.runs.len(),
        report.threads,
        report.wall_clock.as_secs_f64() * 1e3,
        report.total_fired(),
        report.digest(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_sim::campaign::{run_campaign, RunReport};

    fn parse(words: &[&str]) -> CampaignArgs {
        CampaignArgs::from_iter(words.iter().map(|s| (*s).to_owned()), 42)
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]);
        assert_eq!(
            a,
            CampaignArgs {
                smoke: false,
                threads: 0,
                seed: 42
            }
        );
        let a = parse(&["--smoke", "--threads", "8", "--seed", "7"]);
        assert_eq!(
            a,
            CampaignArgs {
                smoke: true,
                threads: 8,
                seed: 7
            }
        );
        assert_eq!(a.config(), CampaignConfig::new(7).threads(8));
        assert_eq!(a.points(20, 4), 4);
        assert_eq!(parse(&[]).points(20, 4), 20);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        parse(&["--frobnicate"]);
    }

    #[test]
    fn series_conversion_keeps_rows() {
        let jobs = [1.0f64, 2.0, 3.0];
        let report = run_campaign(&jobs, &CampaignConfig::new(1).threads(2), |&x, ctx| {
            RunReport::from_values(ctx, vec![x, x * x])
        });
        let s = campaign_series("t", "t", &["x", "x2"], &report);
        assert_eq!(s.rows, vec![vec![1.0, 1.0], vec![2.0, 4.0], vec![3.0, 9.0]]);
    }
}
