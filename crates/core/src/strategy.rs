//! The two run-time supply strategies of paper §II-B: gate the load at a
//! stabilised nominal rail, or run self-timed logic straight off the
//! varying rail.

use emc_sram::{Sram, SramConfig, TimingDiscipline};
use emc_units::{Joules, Seconds, Volts, Watts};

/// A load-side supply strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupplyStrategy {
    /// "Switch on/off parts of the circuit under the constant (nominal)
    /// voltage": energy is banked in the reservoir, regulated up to
    /// `v_run` (paying the DC-DC), and the (bundled-data, cheap-per-op)
    /// load runs in bursts.
    GatedNominal {
        /// The stabilised run voltage.
        v_run: Volts,
        /// DC-DC efficiency at that operating point.
        converter_efficiency: f64,
        /// Regulator quiescent draw, paid continuously.
        quiescent: Watts,
    },
    /// "Operate under the variable voltage, \[which\] requires much more
    /// robust circuits, such as … self-timed logic": the load runs
    /// directly at whatever voltage the reservoir holds — no converter,
    /// no quiescent, but every op costs the SI design's energy at that
    /// voltage, and nothing runs below the operating floor.
    VariableVdd,
}

impl SupplyStrategy {
    /// The paper's conventional variant at 1 V with a 90 % converter and
    /// 1 µW quiescent.
    pub fn gated_nominal_default() -> Self {
        SupplyStrategy::GatedNominal {
            v_run: Volts(1.0),
            converter_efficiency: 0.9,
            quiescent: Watts(1e-6),
        }
    }
}

/// Outcome of a strategy simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StrategyReport {
    /// Memory operations completed.
    pub ops: u64,
    /// Total energy harvested over the run.
    pub harvested: Joules,
    /// Mean reservoir voltage seen by the load.
    pub mean_vdd: Volts,
}

impl StrategyReport {
    /// Operations per harvested joule — the figure the two strategies
    /// are compared on.
    pub fn ops_per_joule(&self) -> f64 {
        if self.harvested.0 <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.harvested.0
        }
    }
}

/// Simulates `duration` of operation at constant harvested power
/// `income`, with the SRAM as the representative load (one 16-bit write
/// per operation). The reservoir is a 47 nF capacitor clamped at 1.1 V.
///
/// # Panics
///
/// Panics if `income` is negative or `duration`/`dt` non-positive.
pub fn simulate(
    strategy: SupplyStrategy,
    income: Watts,
    duration: Seconds,
    dt: Seconds,
) -> StrategyReport {
    assert!(income.0 >= 0.0, "negative harvest power");
    assert!(duration.0 > 0.0 && dt.0 > 0.0, "bad timing");
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    let cap = 47e-9_f64; // farads
    let v_max = 1.1_f64;
    let mut stored = 0.0_f64; // joules
    let e_cap = |v: f64| 0.5 * cap * v * v;
    let v_of = |e: f64| (2.0 * e / cap).sqrt();

    let mut report = StrategyReport::default();
    let mut v_accum = 0.0;
    let steps = (duration.0 / dt.0).ceil() as usize;
    let mut addr = 0usize;

    for _ in 0..steps {
        report.harvested += income * dt;
        stored = (stored + (income * dt).0).min(e_cap(v_max));
        let v = v_of(stored);
        v_accum += v;

        match strategy {
            SupplyStrategy::GatedNominal {
                v_run,
                converter_efficiency,
                quiescent,
            } => {
                // Quiescent drains first.
                stored = (stored - (quiescent * dt).0).max(0.0);
                // Burst: run ops while banked energy covers their
                // converter-side cost. The bundled design is the cheap
                // one at nominal (0.85× of the SI numbers).
                let e_op =
                    sram.write_at(
                        v_run,
                        addr % 64,
                        0xA5A5,
                        TimingDiscipline::bundled_nominal(),
                    )
                    .energy
                    .0 / converter_efficiency;
                while stored > e_op && e_op > 0.0 {
                    stored -= e_op;
                    report.ops += 1;
                    addr += 1;
                    // One burst per tick is bounded by op latency:
                    let t_op = sram
                        .read_at(v_run, 0, TimingDiscipline::bundled_nominal())
                        .latency
                        .0;
                    let max_ops_per_tick = (dt.0 / t_op).max(1.0) as u64;
                    if report.ops % max_ops_per_tick == 0 {
                        break;
                    }
                }
            }
            SupplyStrategy::VariableVdd => {
                // Run SI ops directly at the reservoir voltage, but only
                // while the rail sits at or above the minimum-energy
                // point: draining deeper would pay exponentially growing
                // leakage-per-op (and eventually stall). Below the run
                // floor the system simply waits for charge — the
                // energy-modulated idle.
                const V_RUN_FLOOR: f64 = 0.32;
                let mut ops_this_tick = 0u64;
                loop {
                    let v_now = Volts(v_of(stored));
                    if v_now.0 < V_RUN_FLOOR {
                        break;
                    }
                    let out = sram.write_at(v_now, addr % 64, 0x5A5A, TimingDiscipline::Completion);
                    if !out.completed || out.energy.0 <= 0.0 || out.energy.0 > stored {
                        break;
                    }
                    let max_ops = (dt.0 / out.latency.0).max(0.0) as u64;
                    if ops_this_tick >= max_ops {
                        break;
                    }
                    stored -= out.energy.0;
                    report.ops += 1;
                    ops_this_tick += 1;
                    addr += 1;
                }
            }
        }
    }
    report.mean_vdd = Volts(v_accum / steps as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_vdd_wins_at_microwatt_density() {
        // 3 µW: the reservoir hovers low; running SI ops at the low rail
        // beats paying CV² at 1 V plus converter losses.
        let income = Watts(3e-6);
        let d = Seconds(2.0);
        let dt = Seconds(1e-3);
        let gated = simulate(SupplyStrategy::gated_nominal_default(), income, d, dt);
        let variable = simulate(SupplyStrategy::VariableVdd, income, d, dt);
        assert!(
            variable.ops_per_joule() > 1.5 * gated.ops_per_joule(),
            "variable {} vs gated {} ops/J",
            variable.ops_per_joule(),
            gated.ops_per_joule()
        );
    }

    #[test]
    fn gated_nominal_competitive_at_high_density() {
        // 5 mW: the reservoir rides the clamp; the cheap bundled design
        // at a stabilised rail is at least comparable per joule.
        let income = Watts(5e-3);
        let d = Seconds(0.2);
        let dt = Seconds(1e-3);
        let gated = simulate(SupplyStrategy::gated_nominal_default(), income, d, dt);
        let variable = simulate(SupplyStrategy::VariableVdd, income, d, dt);
        assert!(
            gated.ops_per_joule() > 0.5 * variable.ops_per_joule(),
            "gated {} vs variable {} ops/J",
            gated.ops_per_joule(),
            variable.ops_per_joule()
        );
        assert!(gated.ops > 0 && variable.ops > 0);
    }

    #[test]
    fn starvation_produces_no_ops() {
        let r = simulate(
            SupplyStrategy::VariableVdd,
            Watts(1e-9),
            Seconds(0.05),
            Seconds(1e-3),
        );
        assert_eq!(r.ops, 0);
        assert_eq!(r.ops_per_joule(), 0.0);
    }

    #[test]
    fn mean_vdd_reflects_power_density() {
        let low = simulate(
            SupplyStrategy::VariableVdd,
            Watts(2e-6),
            Seconds(0.5),
            Seconds(1e-3),
        );
        let high = simulate(
            SupplyStrategy::VariableVdd,
            Watts(5e-3),
            Seconds(0.5),
            Seconds(1e-3),
        );
        assert!(high.mean_vdd > low.mean_vdd);
    }

    #[test]
    #[should_panic(expected = "bad timing")]
    fn zero_duration_panics() {
        let _ = simulate(
            SupplyStrategy::VariableVdd,
            Watts(1e-6),
            Seconds(0.0),
            Seconds(1e-3),
        );
    }
}
