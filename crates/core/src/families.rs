//! Energy per operation across the five logic families.
//!
//! [`crate::qos`] compares the paper's two classic styles; this module
//! widens the comparison to the five [`LogicFamily`] design points by
//! measuring each family with the instrument it calls for:
//!
//! * speed-independent and bundled-data reuse the gate-level QoS rig of
//!   [`measure_pipeline_qos`] (variation included);
//! * adiabatic runs a phase-disciplined [`AdiabaticPipeline`] whose
//!   ramp time fixes the `ξ·(RC/T)` friction;
//! * charge-recovery runs bounded oscillator bursts on a
//!   [`ChargeRecoveryMemory`] and pays only the fresh top-up;
//! * Razor-DVS drives a [`RazorPipeline`] under the same variation as
//!   the bundled rig, detecting and replaying timing violations.
//!
//! Every measurement is deterministic for a given seed, so the sweeps
//! parallelise on the campaign engine with byte-identical output at any
//! thread count.

use emc_altlogic::{AdiabaticPipeline, ChargeRecoveryMemory, LogicFamily, RazorPipeline};
use emc_device::{AdiabaticModel, DeviceModel, VariationModel};
use emc_netlist::Netlist;
use emc_power::{ClockShape, PowerClock};
use emc_prng::StdRng;
use emc_sim::campaign::{run_campaign, CampaignConfig, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Farads, Joules, Seconds, Volts, Watts, Waveform};

use crate::qos::{measure_pipeline_qos, DesignStyle};

/// One family measured at one operating voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyPoint {
    /// The family measured.
    pub family: LogicFamily,
    /// Operating voltage (peak voltage for the adiabatic clock).
    pub vdd: Volts,
    /// Energy actually *lost* per operation — recovered and recycled
    /// charge excluded, replay penalties included.
    pub energy_per_op: Joules,
    /// Operations per second of the measurement rig.
    pub throughput: f64,
    /// Fraction of operations delivered correctly (phase-clean for the
    /// adiabatic cascade, full-count bursts for the recovery memory).
    pub quality: f64,
}

impl FamilyPoint {
    /// Mean power of the measurement (energy/op × throughput).
    pub fn power(&self) -> Watts {
        Watts(self.energy_per_op.0 * self.throughput)
    }
}

/// Ramp time of the default adiabatic measurement clock.
pub const ADIABATIC_RAMP: Seconds = Seconds(50e-9);

fn adiabatic_pipeline(vdd: Volts, ramp: Seconds) -> AdiabaticPipeline {
    let clock = PowerClock::symmetric(vdd, ramp, 4, ClockShape::Trapezoid);
    AdiabaticPipeline::new(
        clock,
        AdiabaticModel::new(DeviceModel::umc90()),
        3,
        24,
        Farads(2e-15),
    )
}

/// Measures the adiabatic cascade at `vdd` with an explicit ramp time —
/// the knob the ramp-time sweep of `fig_altlogic_energy` turns.
pub fn measure_adiabatic(vdd: Volts, ramp: Seconds) -> FamilyPoint {
    let run = adiabatic_pipeline(vdd, ramp).run(32);
    FamilyPoint {
        family: LogicFamily::Adiabatic,
        vdd,
        energy_per_op: run.energy_per_op(),
        throughput: run.throughput(),
        quality: if run.clean() { 1.0 } else { 0.0 },
    }
}

fn measure_recovery(vdd: Volts) -> FamilyPoint {
    const COUNTS: u64 = 16;
    let mem = ChargeRecoveryMemory::new(Farads(2e-12), 12, COUNTS, 0.8);
    let session = mem.run(vdd, 8);
    let total_time: f64 = session.ops.iter().map(|o| o.duration.0).sum();
    let full: usize = session.ops.iter().filter(|o| o.code >= COUNTS).count();
    FamilyPoint {
        family: LogicFamily::ChargeRecovery,
        vdd,
        energy_per_op: Joules(session.fresh_total().0 / session.ops.len() as f64),
        throughput: if total_time > 0.0 {
            session.ops.len() as f64 / total_time
        } else {
            0.0
        },
        quality: full as f64 / session.ops.len() as f64,
    }
}

/// The word train every gate-level family rig carries.
pub fn family_words() -> Vec<u64> {
    (0..12u64).map(|i| (i * 0x9E) % 256).collect()
}

/// Runs the Razor-DVS rig at `vdd` and returns the raw transfer
/// outcome — error counts, replays and the replay energy split the
/// ablation binary plots. Same pipeline dimensions and σ(Vt) as the
/// bundled rig in [`measure_pipeline_qos`], so the comparison isolates
/// the shadow latches and replay. Deterministic for a given `seed`.
pub fn measure_razor_outcome(vdd: Volts, seed: u64) -> emc_altlogic::RazorOutcome {
    let device = DeviceModel::umc90();
    let words = family_words();
    let mut nl = Netlist::new();
    let p = RazorPipeline::build_wide(&mut nl, 3, 8, 4, 2.0, 6.0, "rz");
    let variation = VariationModel::new(0.045);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulator::new(nl, device.clone());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd.0)));
    sim.assign_all(d);
    for i in 0..sim.netlist().gate_count() {
        let id = sim.netlist().gate_id(i);
        sim.set_delay_scale(id, variation.delay_multiplier(&device, vdd, &mut rng));
    }
    sim.start();
    sim.run_to_quiescence(1_000_000);
    p.transfer(&mut sim, &words, Seconds(10.0), 2.0, 2)
}

fn measure_razor(vdd: Volts, seed: u64) -> FamilyPoint {
    let words = family_words();
    let out = measure_razor_outcome(vdd, seed);
    let correct = out
        .received
        .iter()
        .zip(&words)
        .filter(|(a, b)| a == b)
        .count();
    FamilyPoint {
        family: LogicFamily::RazorDvs,
        vdd,
        energy_per_op: out.energy_per_word(),
        throughput: out.throughput(),
        quality: if out.completed && !out.received.is_empty() {
            correct as f64 / words.len() as f64
        } else {
            0.0
        },
    }
}

/// Measures one family at one voltage. Deterministic for a given
/// `seed`; the adiabatic point uses [`ADIABATIC_RAMP`].
pub fn measure_family(family: LogicFamily, vdd: Volts, seed: u64) -> FamilyPoint {
    match family {
        LogicFamily::SpeedIndependent | LogicFamily::BundledData => {
            let style = if family == LogicFamily::SpeedIndependent {
                DesignStyle::SpeedIndependent
            } else {
                DesignStyle::BundledData
            };
            let q = measure_pipeline_qos(style, vdd, seed);
            FamilyPoint {
                family,
                vdd,
                energy_per_op: q.energy_per_token,
                throughput: q.throughput,
                quality: q.correct_fraction,
            }
        }
        LogicFamily::Adiabatic => measure_adiabatic(vdd, ADIABATIC_RAMP),
        LogicFamily::ChargeRecovery => measure_recovery(vdd),
        LogicFamily::RazorDvs => measure_razor(vdd, seed),
    }
}

/// Sweeps one family over a voltage grid, serially.
pub fn family_curve(family: LogicFamily, grid: &[f64], seed: u64) -> Vec<FamilyPoint> {
    grid.iter()
        .map(|&v| measure_family(family, Volts(v), seed))
        .collect()
}

/// [`family_curve`] fanned out on the campaign engine — identical
/// output at any `threads` (`0` = one per core).
pub fn family_curve_parallel(
    family: LogicFamily,
    grid: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<FamilyPoint> {
    let cfg = CampaignConfig::new(seed).threads(threads);
    let report = run_campaign(grid, &cfg, |&v, ctx| {
        let p = measure_family(family, Volts(v), seed);
        RunReport::from_values(
            ctx,
            vec![p.vdd.0, p.energy_per_op.0, p.throughput, p.quality],
        )
    });
    report
        .rows()
        .iter()
        .map(|r| FamilyPoint {
            family,
            vdd: Volts(r[0]),
            energy_per_op: Joules(r[1]),
            throughput: r[2],
            quality: r[3],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_measurable_at_nominal() {
        for family in LogicFamily::ALL {
            let p = measure_family(family, Volts(1.0), 7);
            assert!(p.energy_per_op.0 > 0.0, "{family}: no energy booked");
            assert!(p.throughput > 0.0, "{family}: no throughput");
            assert_eq!(p.quality, 1.0, "{family}: not clean at nominal");
        }
    }

    #[test]
    fn adiabatic_beats_bundled_on_energy_at_nominal() {
        let ad = measure_family(LogicFamily::Adiabatic, Volts(1.0), 7);
        let bd = measure_family(LogicFamily::BundledData, Volts(1.0), 7);
        assert!(
            ad.energy_per_op.0 < bd.energy_per_op.0,
            "adiabatic {} vs bundled {}",
            ad.energy_per_op,
            bd.energy_per_op
        );
    }

    #[test]
    fn slower_ramp_lowers_adiabatic_energy_until_leakage() {
        // Friction side of the optimum: slower ramp wins.
        let fast = measure_adiabatic(Volts(0.5), Seconds(2e-9));
        let slow = measure_adiabatic(Volts(0.5), Seconds(20e-9));
        assert!(slow.energy_per_op.0 < fast.energy_per_op.0);
        assert!(slow.throughput < fast.throughput);
        // Far past the optimum the leakage floor takes over.
        let crawl = measure_adiabatic(Volts(0.5), Seconds(50e-6));
        assert!(crawl.energy_per_op.0 > slow.energy_per_op.0);
    }

    #[test]
    fn parallel_curve_matches_serial() {
        let grid = [0.5, 1.0];
        for family in [LogicFamily::Adiabatic, LogicFamily::RazorDvs] {
            let serial = family_curve(family, &grid, 7);
            let parallel = family_curve_parallel(family, &grid, 7, 2);
            assert_eq!(serial, parallel, "{family}");
        }
    }
}
