//! The holistic power-adaptive loop of the paper's Fig. 3: harvester →
//! storage → DC-DC → sensing → scheduling → computation, closed both
//! ways.

use emc_petri::TaskGraph;
use emc_power::{DcDcConverter, HarvestSource, PowerChain, StorageCap};
use emc_sched::{EnergyTokenScheduler, GreedyScheduler, ScheduleReport};
use emc_units::{Farads, Joules, Seconds, Volts, Watts, Waveform};

/// Result of one holistic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolisticReport {
    /// Tasks completed.
    pub completed: usize,
    /// Energy the harvester produced.
    pub harvested: Joules,
    /// Energy that reached the load rail.
    pub delivered: Joules,
    /// Energy invested in work that was thrown away (brown-outs).
    pub wasted: Joules,
    /// Completions per harvested joule — the "useful energy consumption
    /// … maximized for a given amount of energy produced" of Fig. 3.
    pub completions_per_joule: f64,
}

/// The experiment: the same task workload and the same harvest profile,
/// run through an *adaptive* (energy-token scheduling, rail matched to
/// the minimum-energy point) or *non-adaptive* (greedy scheduling at the
/// nominal rail) system.
#[derive(Debug, Clone)]
pub struct HolisticExperiment {
    /// Mean harvested power.
    pub income: Watts,
    /// Burst period of the (sporadic) harvest profile.
    pub burst_period: Seconds,
    /// Total simulated time.
    pub duration: Seconds,
}

impl HolisticExperiment {
    /// The default scenario: 30 µW average arriving in 50 ms bursts over
    /// 4 s.
    pub fn new_default() -> Self {
        Self {
            income: Watts(30e-6),
            burst_period: Seconds(50e-3),
            duration: Seconds(4.0),
        }
    }

    fn workload() -> TaskGraph {
        // 5 stages of 4 parallel tasks; each task needs 2 µJ at the rail
        // and nominally lasts 8 ms.
        TaskGraph::fork_join(5, 4, Joules(2e-6), Seconds(8e-3))
    }

    fn chain(&self, v_out: Volts) -> PowerChain {
        // Bursty harvest: the average is `income`, delivered in the first
        // fifth of every burst period.
        let period = self.burst_period.0;
        let peak = self.income.0 * 5.0;
        let profile = Waveform::steps(
            (0..((self.duration.0 / period).ceil() as usize))
                .flat_map(|k| {
                    [
                        (Seconds(k as f64 * period), peak),
                        (Seconds(k as f64 * period + period / 5.0), 0.0),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        PowerChain::new(
            HarvestSource::Profile(profile),
            StorageCap::new(Farads(22e-6), Volts(0.3), Volts(1.1)),
            DcDcConverter::new(v_out),
        )
    }

    /// Runs the experiment. `adaptive = true` uses the energy-token
    /// scheduler with the rail at the SRAM minimum-energy point (0.4 V —
    /// ops are cheap, so each task's rail-side quantum is small);
    /// `adaptive = false` uses the greedy scheduler at the 1 V nominal
    /// rail (each task costs `(1.0/0.4)² = 6.25×` more at the rail).
    pub fn run(&self, adaptive: bool) -> HolisticReport {
        let tick = Seconds(1e-3);
        let ticks = (self.duration.0 / tick.0) as usize;
        let (v_rail, energy_scale) = if adaptive {
            (Volts(0.4), 1.0)
        } else {
            // CV² at the nominal rail: same work, 6.25× the energy.
            (Volts(1.0), (1.0_f64 / 0.4).powi(2))
        };

        // Scale the workload's task energies to the rail.
        let mut graph = TaskGraph::new();
        {
            let base = Self::workload();
            let mut ids = Vec::new();
            for id in base.ids() {
                let t = base.task(id);
                let deps: Vec<_> = t.deps.iter().map(|d| ids[d.index()]).collect();
                let nid = graph.add_task(&t.name, t.energy * energy_scale, t.duration, &deps);
                ids.push(nid);
            }
        }

        // Drive the chain tick by tick; the delivered energy is the
        // scheduler's income.
        let mut chain = self.chain(v_rail);
        let total = graph.len();
        let run_sched = |income: &mut dyn FnMut(usize) -> Joules| -> ScheduleReport {
            if adaptive {
                EnergyTokenScheduler::run(graph.clone(), Joules(50e-6), 4, tick.0, ticks, income)
            } else {
                GreedyScheduler::run(graph.clone(), Joules(50e-6), 4, tick.0, ticks, income)
            }
        };
        // The load demand per tick: enough rail power for the active
        // tasks; we request a fixed draw matched to 4 concurrent tasks.
        let demand = Watts(4.0 * 2e-6 * energy_scale / 8e-3);
        let mut income_fn = |_t: usize| chain.tick(tick, demand);
        let report = run_sched(&mut income_fn);

        let chain_report = *chain.report();
        HolisticReport {
            completed: report.completed.min(total),
            harvested: chain_report.harvested,
            delivered: chain_report.delivered,
            wasted: report.wasted_energy,
            completions_per_joule: if chain_report.harvested.0 > 0.0 {
                report.completed as f64 / chain_report.harvested.0
            } else {
                0.0
            },
        }
    }
}

impl Default for HolisticExperiment {
    fn default() -> Self {
        Self::new_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_completes_more_per_joule() {
        let exp = HolisticExperiment::new_default();
        let adaptive = exp.run(true);
        let fixed = exp.run(false);
        assert!(
            adaptive.completions_per_joule > fixed.completions_per_joule,
            "adaptive {} vs fixed {} completions/J",
            adaptive.completions_per_joule,
            fixed.completions_per_joule
        );
        assert!(adaptive.completed >= fixed.completed);
    }

    #[test]
    fn adaptive_wastes_nothing() {
        let exp = HolisticExperiment::new_default();
        let adaptive = exp.run(true);
        assert_eq!(adaptive.wasted, Joules(0.0));
    }

    #[test]
    fn energy_accounting_is_sane() {
        let exp = HolisticExperiment::new_default();
        let r = exp.run(true);
        assert!(r.harvested.0 > 0.0);
        assert!(r.delivered.0 > 0.0);
        assert!(r.delivered <= r.harvested);
    }

    #[test]
    fn abundant_power_completes_everything_either_way() {
        let exp = HolisticExperiment {
            income: Watts(5e-3),
            burst_period: Seconds(50e-3),
            duration: Seconds(2.0),
        };
        let adaptive = exp.run(true);
        let fixed = exp.run(false);
        assert_eq!(adaptive.completed, 20);
        assert_eq!(fixed.completed, 20);
    }
}
