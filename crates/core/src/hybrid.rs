//! The power-adaptive hybrid: sense Vdd, pick the design style
//! (the recommendation of paper §II-A).

use emc_device::DeviceModel;
use emc_sensors::ReferenceFreeSensor;
use emc_sram::{CellKind, FailureAnalysis};
use emc_units::Volts;

use crate::qos::DesignStyle;

/// A controller that senses the actual rail with the reference-free
/// sensor and selects the design style:
///
/// * above the switch threshold — [`DesignStyle::BundledData`]
///   (power-efficient);
/// * below it — [`DesignStyle::SpeedIndependent`]
///   (power-proportional, still correct).
///
/// The threshold is derived from where the bundled timing margin dies
/// (the Fig. 5 mismatch), plus a guard band.
#[derive(Debug, Clone)]
pub struct HybridController {
    sensor: ReferenceFreeSensor,
    threshold: Volts,
}

impl HybridController {
    /// A controller with an explicit switch threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not strictly positive.
    pub fn new(threshold: Volts) -> Self {
        assert!(threshold.0 > 0.0, "threshold must be positive");
        Self {
            sensor: ReferenceFreeSensor::new(8),
            threshold,
        }
    }

    /// A controller whose threshold is derived from the device model:
    /// the bundled failure voltage for a 2×-margin design at 1 V, plus a
    /// 50 mV guard band.
    pub fn new_default() -> Self {
        let device = DeviceModel::umc90();
        let fa = FailureAnalysis::new(64, 1, CellKind::SixT);
        let fail = fa
            .bundled_failure_voltage(&device, Volts(1.0), 2.0)
            .unwrap_or(Volts(0.3));
        Self::new(Volts(fail.0 + 0.05))
    }

    /// The switch threshold.
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// Senses `actual_vdd` (through the reference-free sensor, so the
    /// decision uses the *measured* voltage, quantisation error and all)
    /// and picks the style.
    pub fn choose(&self, actual_vdd: Volts) -> DesignStyle {
        let sensed = self
            .sensor
            .measure_and_decode(clamp_to_sensor_range(actual_vdd));
        if sensed >= self.threshold {
            DesignStyle::BundledData
        } else {
            DesignStyle::SpeedIndependent
        }
    }

    /// The QoS the hybrid would report at `vdd`: the chosen style's QoS
    /// point (see [`crate::qos::measure_pipeline_qos`]).
    pub fn qos_at(&self, vdd: Volts, seed: u64) -> crate::qos::QosPoint {
        crate::qos::measure_pipeline_qos(self.choose(vdd), vdd, seed)
    }
}

fn clamp_to_sensor_range(v: Volts) -> Volts {
    Volts(v.0.clamp(
        emc_sensors::reference_free::RANGE.0 .0,
        emc_sensors::reference_free::RANGE.1 .0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_sits_between_the_regimes() {
        let c = HybridController::new_default();
        let t = c.threshold().0;
        assert!((0.3..0.6).contains(&t), "threshold {t}");
    }

    #[test]
    fn chooses_si_when_depleted_and_bundled_when_healthy() {
        let c = HybridController::new_default();
        assert_eq!(c.choose(Volts(0.2)), DesignStyle::SpeedIndependent);
        assert_eq!(c.choose(Volts(0.3)), DesignStyle::SpeedIndependent);
        assert_eq!(c.choose(Volts(0.8)), DesignStyle::BundledData);
        assert_eq!(c.choose(Volts(1.0)), DesignStyle::BundledData);
    }

    #[test]
    fn decision_is_based_on_the_sensed_value() {
        // Just around the threshold the sensed (quantised) value decides;
        // both outcomes are acceptable within the sensor's 10 mV error,
        // but the decision must be stable for the same input.
        let c = HybridController::new_default();
        let v = c.threshold();
        assert_eq!(c.choose(v), c.choose(v));
    }

    #[test]
    fn hybrid_tracks_the_upper_envelope() {
        let c = HybridController::new_default();
        // At nominal the hybrid must match the bundled efficiency…
        let at_nominal = c.qos_at(Volts(1.0), 7);
        let d1 = crate::qos::measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(1.0), 7);
        assert!(at_nominal.qos_per_watt() > d1.qos_per_watt());
        // …and at depleted supply it must still deliver correct tokens.
        let depleted = c.qos_at(Volts(0.16), 11);
        assert!(depleted.correct_fraction > 0.99);
        assert!(depleted.qos() > 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = HybridController::new(Volts(0.0));
    }
}
