//! QoS versus supply voltage for the two design styles (paper Fig. 2).

use emc_async::{BundledPipeline, DualRailPipeline};
use emc_device::{DeviceModel, VariationModel};
use emc_netlist::Netlist;
use emc_prng::StdRng;
use emc_sim::campaign::{run_campaign, CampaignConfig, RunReport};
use emc_sim::{Simulator, SupplyKind};
use emc_units::{Joules, Seconds, Volts, Watts, Waveform};

/// The two design styles the paper contrasts in §II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignStyle {
    /// Design 1: dual-rail, completion-detected, speed-independent.
    SpeedIndependent,
    /// Design 2: single-rail data bundled with a matched delay line.
    BundledData,
}

impl core::fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DesignStyle::SpeedIndependent => f.write_str("speed-independent"),
            DesignStyle::BundledData => f.write_str("bundled-data"),
        }
    }
}

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosPoint {
    /// Supply voltage of the measurement.
    pub vdd: Volts,
    /// Raw token throughput (tokens per second, counting wrong ones).
    pub throughput: f64,
    /// Fraction of tokens that arrived intact.
    pub correct_fraction: f64,
    /// Mean power drawn during the transfer.
    pub power: Watts,
    /// Energy per (any) token.
    pub energy_per_token: Joules,
}

impl QosPoint {
    /// The quality of service: *correct* tokens per second. A fast but
    /// corrupting design delivers zero QoS.
    pub fn qos(&self) -> f64 {
        self.throughput * self.correct_fraction
    }

    /// QoS per watt — the power-efficiency axis of Fig. 2.
    pub fn qos_per_watt(&self) -> f64 {
        if self.power.0 <= 0.0 {
            0.0
        } else {
            self.qos() / self.power.0
        }
    }
}

/// Measures one style at one voltage by gate-level simulation: an
/// 8-bit-wide, 3-stage pipeline carries a pseudo-random word train;
/// every gate receives a threshold-variation delay multiplier sampled at
/// `vdd` (sub-threshold variation is what breaks bundled timing), and
/// the received words are checked against the sent ones.
///
/// Deterministic for a given `seed`.
pub fn measure_pipeline_qos(style: DesignStyle, vdd: Volts, seed: u64) -> QosPoint {
    let device = DeviceModel::umc90();
    let words: Vec<u64> = (0..12u64).map(|i| (i * 0x9E) % 256).collect();
    let mut nl = Netlist::new();
    // σ(Vt) = 45 mV: representative of minimum-size devices in a 90 nm
    // low-power process — the regime where sub-threshold bundling dies.
    let variation = VariationModel::new(0.045);
    let mut rng = StdRng::seed_from_u64(seed);

    let deadline = Seconds(10.0);
    let outcome = match style {
        DesignStyle::SpeedIndependent => {
            let p = DualRailPipeline::build_wide(&mut nl, 3, 8, "d1");
            let mut sim = Simulator::new(nl, device.clone());
            let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd.0)));
            sim.assign_all(d);
            for i in 0..sim.netlist().gate_count() {
                let id = sim.netlist().gate_id(i);
                sim.set_delay_scale(id, variation.delay_multiplier(&device, vdd, &mut rng));
            }
            sim.start();
            sim.run_to_quiescence(100_000);
            p.transfer(&mut sim, &words, deadline)
        }
        DesignStyle::BundledData => {
            let p = BundledPipeline::build_wide(&mut nl, 3, 8, 4, 2.0, "d2");
            let mut sim = Simulator::new(nl, device.clone());
            let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd.0)));
            sim.assign_all(d);
            for i in 0..sim.netlist().gate_count() {
                let id = sim.netlist().gate_id(i);
                sim.set_delay_scale(id, variation.delay_multiplier(&device, vdd, &mut rng));
            }
            sim.start();
            sim.run_to_quiescence(100_000);
            p.transfer(&mut sim, &words, deadline)
        }
    };

    let received = &outcome.received;
    let correct = received.iter().zip(&words).filter(|(a, b)| a == b).count();
    let correct_fraction = if outcome.completed && !received.is_empty() {
        correct as f64 / words.len() as f64
    } else {
        0.0
    };
    let throughput = outcome.throughput();
    let power = if outcome.duration.0 > 0.0 {
        outcome.energy / outcome.duration
    } else {
        Watts(0.0)
    };
    QosPoint {
        vdd,
        throughput,
        correct_fraction,
        power,
        energy_per_token: outcome.energy_per_token(),
    }
}

/// Sweeps a style over a voltage grid (see [`measure_pipeline_qos`]).
pub fn qos_curve(style: DesignStyle, grid: &[f64], seed: u64) -> Vec<QosPoint> {
    grid.iter()
        .map(|&v| measure_pipeline_qos(style, Volts(v), seed))
        .collect()
}

/// [`qos_curve`] fanned out on the campaign engine: each grid point is
/// an independent gate-level simulation, so the sweep parallelises
/// perfectly. Output is identical to the serial sweep — every point is
/// measured with the same `seed`, and the engine guarantees aggregation
/// order is submission order regardless of `threads` (`0` = one per
/// core).
pub fn qos_curve_parallel(
    style: DesignStyle,
    grid: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<QosPoint> {
    let cfg = CampaignConfig::new(seed).threads(threads);
    let report = run_campaign(grid, &cfg, |&v, ctx| {
        let p = measure_pipeline_qos(style, Volts(v), seed);
        RunReport::from_values(
            ctx,
            vec![
                p.vdd.0,
                p.throughput,
                p.correct_fraction,
                p.power.0,
                p.energy_per_token.0,
            ],
        )
    });
    report
        .rows()
        .iter()
        .map(|r| QosPoint {
            vdd: Volts(r[0]),
            throughput: r[1],
            correct_fraction: r[2],
            power: Watts(r[3]),
            energy_per_token: Joules(r[4]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_curve_matches_serial() {
        let grid = [0.3, 0.6, 1.0];
        let serial = qos_curve(DesignStyle::SpeedIndependent, &grid, 7);
        let parallel = qos_curve_parallel(DesignStyle::SpeedIndependent, &grid, 7, 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn both_styles_deliver_at_nominal() {
        let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(1.0), 7);
        let d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(1.0), 7);
        assert!(d1.qos() > 0.0);
        assert!(d2.qos() > 0.0);
        assert_eq!(d1.correct_fraction, 1.0);
        assert_eq!(d2.correct_fraction, 1.0);
    }

    #[test]
    fn design2_more_efficient_at_nominal() {
        let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(1.0), 7);
        let d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(1.0), 7);
        assert!(
            d2.qos_per_watt() > d1.qos_per_watt(),
            "bundled {} vs dual-rail {} QoS/W",
            d2.qos_per_watt(),
            d1.qos_per_watt()
        );
    }

    #[test]
    fn design1_delivers_where_design2_cannot() {
        // Deep sub-threshold with variation: the paper's crossover. The
        // bundled failure is statistical (a die may get lucky), so check
        // across several dice: the SI design must be correct on *every*
        // die, the bundled design must corrupt on *most*.
        let v = Volts(0.16);
        let mut d2_corrupt = 0;
        for seed in 0..6 {
            let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, v, seed);
            assert!(
                d1.correct_fraction > 0.99,
                "dual-rail corrupted on die {seed}: {}",
                d1.correct_fraction
            );
            let d2 = measure_pipeline_qos(DesignStyle::BundledData, v, seed);
            if d2.correct_fraction < 1.0 {
                d2_corrupt += 1;
            }
        }
        assert!(
            d2_corrupt >= 3,
            "bundled should corrupt on most sub-threshold dice, got {d2_corrupt}/6"
        );
    }

    #[test]
    fn measurement_is_seed_deterministic() {
        let a = measure_pipeline_qos(DesignStyle::BundledData, Volts(0.3), 5);
        let b = measure_pipeline_qos(DesignStyle::BundledData, Volts(0.3), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn qos_curve_is_grid_ordered() {
        let c = qos_curve(DesignStyle::SpeedIndependent, &[0.3, 1.0], 3);
        assert_eq!(c.len(), 2);
        assert!(c[1].throughput > c[0].throughput);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            DesignStyle::SpeedIndependent.to_string(),
            "speed-independent"
        );
        assert_eq!(DesignStyle::BundledData.to_string(), "bundled-data");
    }
}
