//! The capstone facade: a complete power-adaptive system with two-way
//! control between supply and computation.
//!
//! §IV of the paper: "Such systems must have two-way control and
//! adaptation between the power source and computational load:
//! (i) perform task scheduling according to the power profile, and
//! (ii) optimize the supply to the load needs." [`PowerAdaptiveSystem`]
//! wires everything this repository built into that loop:
//!
//! * the **supply side** is a [`PowerChain`] (harvester → storage →
//!   DC-DC);
//! * the **sensing** is the reference-free measurement embedded in the
//!   [`HybridController`];
//! * the **style decision** picks speed-independent or bundled circuits
//!   from the sensed rail (Fig. 2's hybrid);
//! * the **rate decision** picks the degree of concurrency affordable at
//!   the harvested power ([`ConcurrencyController`], ref \[11\]);
//! * the **load** is the SI SRAM, executing as many accesses as the
//!   delivered energy and chosen concurrency allow.

use emc_power::PowerChain;
use emc_sched::ConcurrencyController;
use emc_sram::{Sram, SramConfig, TimingDiscipline};
use emc_units::{Joules, Seconds, Volts, Watts};

use crate::hybrid::HybridController;
use crate::qos::DesignStyle;

/// One adaptation step's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemTick {
    /// Time at the end of the step.
    pub t: Seconds,
    /// Reservoir voltage at the decision point.
    pub v_store: Volts,
    /// The style the hybrid controller selected.
    pub style: DesignStyle,
    /// The rail the load ran at this step.
    pub v_rail: Volts,
    /// Concurrency granted by the elastic controller (0 = gated off).
    pub concurrency: usize,
    /// Memory operations completed this step.
    pub ops: u64,
    /// Energy delivered to the load this step.
    pub delivered: Joules,
}

/// Cumulative outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SystemReport {
    /// Total memory operations completed.
    pub ops: u64,
    /// Total energy harvested.
    pub harvested: Joules,
    /// Total energy delivered to the load rail.
    pub delivered: Joules,
    /// Number of style switches (SI ↔ bundled).
    pub style_switches: usize,
    /// Steps spent fully gated off.
    pub gated_steps: usize,
}

impl SystemReport {
    /// Operations per harvested joule.
    pub fn ops_per_joule(&self) -> f64 {
        if self.harvested.0 <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.harvested.0
        }
    }
}

/// Accesses per scheduled job (a job is the scheduling quantum: a burst
/// of SRAM work executed at hardware speed, then idle — duty cycling).
const OPS_PER_JOB: u64 = 100;

/// The composed power-adaptive system (see the module docs).
#[derive(Debug, Clone)]
pub struct PowerAdaptiveSystem {
    chain: PowerChain,
    hybrid: HybridController,
    elastic: ConcurrencyController,
    sram: Sram,
    tick: Seconds,
    last_style: Option<DesignStyle>,
    report: SystemReport,
    /// Sustained power of one duty-cycled execution slot — the elastic
    /// model's power unit in watts.
    power_unit: Watts,
    /// Income measured over the previous step (the power profile the
    /// scheduler adapts to).
    last_income: Watts,
    prev_harvested: Joules,
}

impl PowerAdaptiveSystem {
    /// Composes a system. `tick` is the adaptation period; `power_unit`
    /// maps the elastic model's normalised per-server power onto watts.
    ///
    /// # Panics
    ///
    /// Panics if `tick` or `power_unit` is not strictly positive.
    pub fn new(
        chain: PowerChain,
        elastic: ConcurrencyController,
        tick: Seconds,
        power_unit: Watts,
    ) -> Self {
        assert!(tick.0 > 0.0, "tick must be positive");
        assert!(power_unit.0 > 0.0, "power unit must be positive");
        Self {
            chain,
            hybrid: HybridController::new_default(),
            elastic,
            sram: Sram::new(SramConfig::paper_1kbit()),
            tick,
            last_style: None,
            report: SystemReport::default(),
            power_unit,
            last_income: Watts(0.0),
            prev_harvested: Joules(0.0),
        }
    }

    /// The cumulative report.
    pub fn report(&self) -> &SystemReport {
        &self.report
    }

    /// Read access to the power chain.
    pub fn chain(&self) -> &PowerChain {
        &self.chain
    }

    /// Runs one adaptation step and returns its record.
    pub fn step(&mut self) -> SystemTick {
        let v_store = self.chain.storage().voltage();

        // (ii) optimise the supply to the load: pick the style from the
        // *sensed* rail, then set the DC-DC accordingly.
        let style = self.hybrid.choose(v_store);
        if let Some(prev) = self.last_style {
            if prev != style {
                self.report.style_switches += 1;
            }
        }
        self.last_style = Some(style);
        let (v_rail, discipline) = match style {
            // Healthy supply: regulate up to nominal, run the cheap
            // bundled design.
            DesignStyle::BundledData => (Volts(1.0), TimingDiscipline::bundled_nominal()),
            // Depleted supply: run self-timed at the minimum-energy
            // point.
            DesignStyle::SpeedIndependent => (Volts(0.4), TimingDiscipline::Completion),
        };
        self.chain.converter_mut().set_v_out(v_rail);

        // (i) schedule to the power profile: the income seen over the
        // previous step sets the concurrency budget. Each slot is a
        // duty-cycled executor drawing `power_unit` sustained: jobs run
        // at hardware speed, then the slot idles.
        let probe = self.sram.write_at(v_rail, 0, 0xA5A5, discipline);
        let e_op = probe.energy;
        let t_op = probe.latency;
        let job_energy = Joules(e_op.0 * OPS_PER_JOB as f64);
        let mut k = self
            .elastic
            .best_k_under_power(self.last_income.0 / self.power_unit.0)
            .unwrap_or(0);
        // Energy-modulated trickle: even with no sustained income, banked
        // charge buys jobs — run a single duty-cycled slot off the store.
        if k == 0 && self.chain.storage().stored_energy().0 > 10.0 * job_energy.0 {
            k = 1;
        }

        let mut ops = 0u64;
        let delivered;
        if k > 0 && e_op.0 > 0.0 && t_op.0.is_finite() {
            let demand = Watts(self.power_unit.0 * k as f64);
            delivered = self.chain.tick(self.tick, demand);
            // Jobs per slot per second at the sustained slot power.
            let mu = self.power_unit.0 / job_energy.0;
            let by_schedule = (k as f64 * mu * self.tick.0).floor();
            let by_energy = (delivered.0 / job_energy.0).floor();
            let by_time = (self.tick.0 / t_op.0 / OPS_PER_JOB as f64 * k as f64).floor();
            let jobs = by_schedule.min(by_energy).min(by_time).max(0.0) as u64;
            ops = jobs * OPS_PER_JOB;
            self.report.ops += ops;
            if jobs == 0 {
                self.report.gated_steps += 1;
            }
        } else {
            self.report.gated_steps += 1;
            delivered = self.chain.tick(self.tick, Watts(0.0));
        }
        self.report.delivered += delivered;
        let harvested = self.chain.report().harvested;
        self.last_income = Watts((harvested.0 - self.prev_harvested.0).max(0.0) / self.tick.0);
        self.prev_harvested = harvested;
        self.report.harvested = harvested;

        SystemTick {
            t: self.chain.now(),
            v_store,
            style,
            v_rail,
            concurrency: k,
            ops,
            delivered,
        }
    }

    /// Runs `n` steps, returning their records.
    pub fn run(&mut self, n: usize) -> Vec<SystemTick> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_power::{DcDcConverter, HarvestSource, StorageCap};
    use emc_sched::ConcurrencyModel;
    use emc_units::{Farads, Waveform};

    fn system(income: Waveform, v0: f64) -> PowerAdaptiveSystem {
        let chain = PowerChain::new(
            HarvestSource::Profile(income),
            StorageCap::new(Farads(4.7e-6), Volts(v0), Volts(1.1)),
            DcDcConverter::new(Volts(0.5)),
        );
        let elastic =
            ConcurrencyController::new(ConcurrencyModel::new(8.0, 1.0, 32).with_power(0.1, 1.0), 8);
        // One normalised power unit = 20 µW per concurrency slot.
        PowerAdaptiveSystem::new(chain, elastic, Seconds(1e-3), Watts(20e-6))
    }

    #[test]
    fn abundant_supply_runs_bundled_at_nominal() {
        let mut sys = system(Waveform::constant(400e-6), 1.0);
        let ticks = sys.run(50);
        let last = ticks.last().unwrap();
        assert_eq!(last.style, DesignStyle::BundledData);
        assert_eq!(last.v_rail, Volts(1.0));
        assert!(last.concurrency > 0);
        assert!(sys.report().ops > 0);
    }

    #[test]
    fn depleted_supply_switches_to_si_at_the_mep() {
        let mut sys = system(Waveform::constant(2e-6), 0.30);
        let ticks = sys.run(50);
        let last = ticks.last().unwrap();
        assert_eq!(last.style, DesignStyle::SpeedIndependent);
        assert_eq!(last.v_rail, Volts(0.4));
    }

    #[test]
    fn swinging_harvest_produces_style_switches() {
        // Strong → dead → strong income swings the reservoir through the
        // hybrid threshold.
        let income = Waveform::steps([
            (Seconds(0.0), 500e-6),
            (Seconds(50e-3), 0.0),
            (Seconds(250e-3), 500e-6),
        ]);
        let mut sys = system(income, 0.9);
        let ticks = sys.run(400);
        assert!(
            sys.report().style_switches >= 2,
            "expected switches, got {} (final style {:?})",
            sys.report().style_switches,
            ticks.last().unwrap().style
        );
    }

    #[test]
    fn starved_system_eventually_gates_off() {
        // No income: the banked charge buys a trickle of jobs, then the
        // system gates off for good.
        let mut sys = system(Waveform::constant(0.0), 0.15);
        let ticks = sys.run(300);
        assert!(sys.report().gated_steps > 0);
        let last = ticks.last().unwrap();
        assert_eq!(last.ops, 0, "a drained system must stop computing");
    }

    #[test]
    fn report_accounting_is_consistent() {
        let mut sys = system(Waveform::constant(100e-6), 0.7);
        let ticks = sys.run(100);
        let total_ops: u64 = ticks.iter().map(|t| t.ops).sum();
        assert_eq!(total_ops, sys.report().ops);
        assert!(sys.report().delivered <= sys.report().harvested + Joules(4.7e-6 * 1.21 / 2.0));
        assert!(sys.report().ops_per_joule() > 0.0);
    }
}
