//! Energy-proportional computing (paper Fig. 1): useful activity versus
//! supplied energy.

use emc_sensors::ChargeToDigitalConverter;
use emc_units::{Farads, Joules, Volts};

/// Activity-versus-energy curves for the proportional and conventional
/// systems.
///
/// * The **energy-proportional** system is the charge-to-digital
///   converter itself: hand it *any* quantum of energy (as charge on its
///   sampling capacitor) and it performs a proportionate amount of
///   computation — "some useful activity can even be generated at small
///   amounts of energy".
/// * The **conventional** system stands for a clocked design behind a
///   regulator: a fixed overhead (clock tree, regulator quiescent, bias)
///   must be paid before *any* useful activity appears, after which
///   activity grows linearly.
#[derive(Debug, Clone)]
pub struct ActivityCurve {
    converter: ChargeToDigitalConverter,
    overhead: Joules,
    ops_per_joule_nominal: f64,
}

impl ActivityCurve {
    /// A curve with the given conventional-system overhead per activation
    /// window and its ops/J at nominal supply.
    ///
    /// # Panics
    ///
    /// Panics if the overhead is negative or the rate not strictly
    /// positive.
    pub fn new(overhead: Joules, ops_per_joule_nominal: f64) -> Self {
        assert!(overhead.0 >= 0.0, "negative overhead");
        assert!(ops_per_joule_nominal > 0.0, "rate must be positive");
        Self {
            converter: ChargeToDigitalConverter::new(Farads(10e-12), 14),
            overhead,
            ops_per_joule_nominal,
        }
    }

    /// Defaults representative of a small clocked subsystem at matching
    /// scale: 2 pJ standing cost per activation window (clock tree +
    /// regulator bias) and ≈600 count-events per pJ once running —
    /// cheaper *at the margin* than the self-timed converter (an
    /// optimised nominal-voltage datapath), which is exactly the Fig. 1
    /// trade-off: dead below the overhead, steeper above it.
    pub fn new_default() -> Self {
        Self::new(Joules(2e-12), 6e14)
    }

    /// Activity (count events) of the energy-proportional system when
    /// given `energy`, delivered as charge on the converter's capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn proportional_activity(&self, energy: Joules) -> u64 {
        assert!(energy.0 >= 0.0, "negative energy");
        // E = C·V²/2 ⇒ the voltage this quantum charges the cap to; the
        // sample switch clamps at 1.2 V (overvoltage protection), so
        // quanta beyond the capacitor's rating are partially discarded.
        let v = (2.0 * energy.0 / self.converter.c_sample().0)
            .sqrt()
            .min(1.2);
        self.converter.convert(Volts(v)).code
    }

    /// Activity of the conventional system for the same quantum: zero
    /// until the overhead is paid, then linear.
    pub fn conventional_activity(&self, energy: Joules) -> u64 {
        assert!(energy.0 >= 0.0, "negative energy");
        let net = energy.0 - self.overhead.0;
        if net <= 0.0 {
            0
        } else {
            (net * self.ops_per_joule_nominal) as u64
        }
    }

    /// Sweeps both systems over `n` energy quanta in `[0, e_max]` —
    /// the Fig. 1 series. Returns `(energy, proportional, conventional)`
    /// triples.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `e_max` is not strictly positive.
    pub fn sweep(&self, e_max: Joules, n: usize) -> Vec<(Joules, u64, u64)> {
        assert!(n >= 2 && e_max.0 > 0.0, "bad sweep");
        (0..n)
            .map(|i| {
                let e = Joules(e_max.0 * i as f64 / (n - 1) as f64);
                (
                    e,
                    self.proportional_activity(e),
                    self.conventional_activity(e),
                )
            })
            .collect()
    }
}

impl Default for ActivityCurve {
    fn default() -> Self {
        Self::new_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_quanta_produce_activity_only_in_the_proportional_system() {
        let c = ActivityCurve::new_default();
        let tiny = Joules(0.5e-12); // below the conventional overhead
        assert!(c.proportional_activity(tiny) > 0);
        assert_eq!(c.conventional_activity(tiny), 0);
    }

    #[test]
    fn conventional_wins_eventually() {
        // Past the overhead the conventional (nominal-voltage, optimised)
        // system's linear slope overtakes the converter's log-like curve.
        let c = ActivityCurve::new_default();
        let big = Joules(5e-12);
        assert!(c.conventional_activity(big) > c.proportional_activity(big));
    }

    #[test]
    fn proportional_activity_monotone() {
        let c = ActivityCurve::new_default();
        let sweep = c.sweep(Joules(5e-12), 9);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "proportional not monotone: {w:?}");
            assert!(w[1].2 >= w[0].2, "conventional not monotone: {w:?}");
        }
    }

    #[test]
    fn zero_energy_zero_activity() {
        let c = ActivityCurve::new_default();
        assert_eq!(c.proportional_activity(Joules(0.0)), 0);
        assert_eq!(c.conventional_activity(Joules(0.0)), 0);
    }

    #[test]
    fn sweep_includes_endpoints() {
        let c = ActivityCurve::new_default();
        let s = c.sweep(Joules(1e-12), 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].0, Joules(0.0));
        assert_eq!(s[4].0, Joules(1e-12));
    }
}
