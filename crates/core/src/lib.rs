//! Energy-modulated computing: the paper's thesis as an API.
//!
//! *Energy-modulated computing* (Yakovlev, DATE 2011) argues that the
//! flow of energy into a system should directly determine — modulate —
//! its computation, and that such systems must be **power-adaptive**:
//! two-way control between the supply side (harvester, storage, DC-DC)
//! and the load side (self-timed circuits whose speed follows Vdd).
//! This crate assembles the substrate crates into that argument:
//!
//! * [`proportionality`] — Fig. 1: an energy-proportional system (the
//!   charge-to-digital converter, which computes *something* for any
//!   quantum of energy) against a conventional system with a standing
//!   overhead that produces nothing below its floor;
//! * [`qos`] — Fig. 2: QoS (correct tokens per second) versus supply
//!   voltage for **Design 1** (speed-independent dual-rail) and
//!   **Design 2** (bundled data), measured by gate-level simulation,
//!   including sub-threshold variation that silently corrupts Design 2;
//! * [`families`] — the Fig. 2 comparison widened to all five
//!   [`emc_altlogic::LogicFamily`] design points: adiabatic,
//!   charge-recovery and Razor-DVS measured next to the two classics;
//! * [`hybrid`] — the paper's recommendation: a hybrid that senses Vdd
//!   (with the reference-free sensor) and switches styles, tracking the
//!   upper envelope of both curves;
//! * [`strategy`] — §II-B's two supply strategies: gate the load at a
//!   stabilised nominal rail, or run self-timed logic directly off the
//!   varying rail;
//! * [`holistic`] — Fig. 3: the closed loop (harvest → store → convert
//!   → sense → schedule → compute), adaptive versus fixed, measured in
//!   completed work per harvested joule.
//!
//! # Examples
//!
//! ```
//! use emc_core::hybrid::HybridController;
//! use emc_core::qos::DesignStyle;
//! use emc_units::Volts;
//!
//! let ctl = HybridController::new_default();
//! // Depleted supply: only the speed-independent style still delivers.
//! assert_eq!(ctl.choose(Volts(0.25)), DesignStyle::SpeedIndependent);
//! // Healthy supply: the bundled style is cheaper per token.
//! assert_eq!(ctl.choose(Volts(1.0)), DesignStyle::BundledData);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod holistic;
pub mod hybrid;
pub mod proportionality;
pub mod qos;
pub mod strategy;
pub mod system;

pub use families::{measure_family, FamilyPoint};
pub use holistic::{HolisticExperiment, HolisticReport};
pub use hybrid::HybridController;
pub use proportionality::ActivityCurve;
pub use qos::{measure_pipeline_qos, DesignStyle, QosPoint};
pub use strategy::{StrategyReport, SupplyStrategy};
pub use system::{PowerAdaptiveSystem, SystemReport, SystemTick};

// The game-theoretic power manager lives in `emc-sched` (it is a
// scheduling construct), but it is *this* crate's power-adaptive story
// that consumers reach for first — re-exported so fleet-level arbiters
// can `use emc_core::{PowerGame, TaskBid}` next to the holistic loop.
pub use emc_sched::{PowerGame, TaskBid};
