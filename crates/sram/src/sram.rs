//! The SRAM macro: storage, access engines and timing disciplines.

use std::cell::RefCell;

use emc_device::DeviceModel;
use emc_obs::metrics::latency_bounds;
use emc_obs::{CounterId, EnergyKind, HistogramId, Telemetry};
use emc_sim::delay::{completion_time, Completion};
use emc_units::{Joules, Seconds, Volts, Waveform};

use crate::cell::CellKind;
use crate::energy::{EnergyCalibration, Op};
use crate::failure::FailureAnalysis;
use crate::timing::{Phase, SramTiming};

/// Static configuration of one SRAM macro.
#[derive(Debug, Clone)]
pub struct SramConfig {
    /// Number of words (rows).
    pub rows: usize,
    /// Word width in bits (columns).
    pub word_bits: usize,
    /// Bit-cell flavour.
    pub cell: CellKind,
    /// Completion-detection segments per column (1 = whole column).
    pub segments: usize,
    /// Device model (corner / temperature already applied).
    pub device: DeviceModel,
}

impl SramConfig {
    /// The paper's experimental macro: 1 kbit as 64 × 16, 6T cells,
    /// whole-column completion detection, typical UMC 90 nm.
    pub fn paper_1kbit() -> Self {
        Self {
            rows: 64,
            word_bits: 16,
            cell: CellKind::SixT,
            segments: 1,
            device: DeviceModel::umc90(),
        }
    }
}

/// How accesses are timed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingDiscipline {
    /// Genuine completion detection on every column (\[7\]; read-before-
    /// write gives write completion). Always correct; pays detection
    /// latency and energy.
    Completion,
    /// Conventional delay-line timing, sized at `design_vdd` with the
    /// given safety `margin`. Fails silently when the Fig. 5 mismatch
    /// outgrows the margin.
    Bundled {
        /// Voltage the delay lines were sized at.
        design_vdd: Volts,
        /// Safety factor on every line.
        margin: f64,
    },
    /// Smart latency bundling \[8\]: one replica column with completion
    /// detection times its siblings with a small margin.
    Replica {
        /// Safety factor of the replica's timing over its siblings.
        margin: f64,
    },
}

impl TimingDiscipline {
    /// A bundled discipline sized at 1 V with 2× margin — the
    /// conventional design the paper argues against.
    pub fn bundled_nominal() -> Self {
        TimingDiscipline::Bundled {
            design_vdd: Volts(1.0),
            margin: 2.0,
        }
    }

    /// A replica discipline with the 1.3× margin used in \[8\].
    pub fn replica_default() -> Self {
        TimingDiscipline::Replica { margin: 1.3 }
    }
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Data returned by a read (writes echo the written word); `None`
    /// when sensing mistimed and the output is garbage.
    pub data: Option<u64>,
    /// `true` if the access met its timing and the stored/read data is
    /// trustworthy.
    pub correct: bool,
    /// Wall-clock latency of the access.
    pub latency: Seconds,
    /// Energy drawn by the access.
    pub energy: Joules,
    /// `false` if the access never finished (supply stalled below the
    /// device floor for the whole integration horizon).
    pub completed: bool,
}

/// Live access instrumentation of an observed [`Sram`].
///
/// Sits in a `RefCell` because reads take `&self`; every access makes
/// one short, non-reentrant `borrow_mut`.
#[derive(Debug, Clone)]
struct SramObs {
    telemetry: Telemetry,
    reads: CounterId,
    writes: CounterId,
    mistimed: CounterId,
    incomplete: CounterId,
    read_latency: HistogramId,
    write_latency: HistogramId,
}

impl SramObs {
    fn new() -> Self {
        let mut telemetry = Telemetry::new();
        let reads = telemetry.metrics.counter("sram.reads");
        let writes = telemetry.metrics.counter("sram.writes");
        let mistimed = telemetry.metrics.counter("sram.accesses_mistimed");
        let incomplete = telemetry.metrics.counter("sram.accesses_incomplete");
        // 1 ns up through tens of ms: nominal-Vdd reads to deep
        // sub-threshold stalls.
        let bounds = latency_bounds(1e-9, 8);
        let read_latency = telemetry.metrics.histogram("sram.read.latency_s", &bounds);
        let write_latency = telemetry.metrics.histogram("sram.write.latency_s", &bounds);
        Self {
            telemetry,
            reads,
            writes,
            mistimed,
            incomplete,
            read_latency,
            write_latency,
        }
    }

    fn record(&mut self, op: Op, out: &AccessOutcome) {
        let (count, latency, account) = match op {
            Op::Read => (self.reads, self.read_latency, "op/read"),
            Op::Write => (self.writes, self.write_latency, "op/write"),
        };
        self.telemetry.metrics.inc(count, 1);
        if out.completed {
            self.telemetry.metrics.observe(latency, out.latency.0);
        } else {
            self.telemetry.metrics.inc(self.incomplete, 1);
        }
        if !out.correct {
            self.telemetry.metrics.inc(self.mistimed, 1);
        }
        self.telemetry
            .energy
            .add(account, EnergyKind::Dissipated, out.energy.0);
    }

    fn record_span(&mut self, op: Op, addr: usize, t0: Seconds, t_end: Seconds) {
        let name = match op {
            Op::Read => format!("read@{addr:#x}"),
            Op::Write => format!("write@{addr:#x}"),
        };
        self.telemetry
            .spans
            .record(name, "sram", addr as u32, t0.0, t_end.0);
    }
}

/// The SRAM macro with live storage.
#[derive(Debug, Clone)]
pub struct Sram {
    config: SramConfig,
    timing: SramTiming,
    energy: EnergyCalibration,
    failure: FailureAnalysis,
    storage: Vec<u64>,
    /// Completion-detected phases in the SI discipline (bit line + write
    /// equality).
    completion_phases: usize,
    /// Cached sensing floor: reads below this voltage are unreliable.
    min_operating: Option<Volts>,
    /// Access instrumentation; `None` until [`Sram::enable_obs`].
    obs: Option<RefCell<SramObs>>,
}

impl Sram {
    /// Builds the macro; storage starts zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero rows/bits, word wider
    /// than 64) or the energy anchors are unsolvable for the device.
    pub fn new(config: SramConfig) -> Self {
        assert!(config.rows > 0, "rows must be positive");
        assert!(
            config.word_bits > 0 && config.word_bits <= 64,
            "word bits must be in 1..=64"
        );
        let timing = SramTiming::new(
            config.device.clone(),
            config.rows,
            config.segments,
            config.cell,
        );
        let completion_phases = 2;
        let energy = EnergyCalibration::solve(&timing, completion_phases)
            .expect("paper energy anchors must be solvable");
        let failure = FailureAnalysis::new(config.rows, config.segments, config.cell);
        let min_operating = failure.min_operating_voltage(&config.device);
        Self {
            storage: vec![0; config.rows],
            timing,
            energy,
            failure,
            completion_phases,
            min_operating,
            config,
            obs: None,
        }
    }

    /// Turns on access instrumentation: counts, latency histograms,
    /// per-operation energy accounts and (for the `*_under` engines)
    /// sim-time access spans. Idempotent.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(RefCell::new(SramObs::new()));
        }
    }

    /// `true` once [`Sram::enable_obs`] has been called.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Snapshots the access telemetry recorded so far (empty when
    /// observability was never enabled).
    pub fn telemetry(&self) -> Telemetry {
        match &self.obs {
            Some(o) => o.borrow().telemetry.clone(),
            None => Telemetry::new(),
        }
    }

    /// `true` if sensing is reliable at `vdd` (cached failure analysis).
    pub fn senses_reliably(&self, vdd: Volts) -> bool {
        match self.min_operating {
            Some(v) => vdd >= v,
            None => false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The timing model.
    pub fn timing(&self) -> &SramTiming {
        &self.timing
    }

    /// The calibrated energy model.
    pub fn energy_model(&self) -> &EnergyCalibration {
        &self.energy
    }

    /// The failure analysis for this geometry.
    pub fn failure_analysis(&self) -> &FailureAnalysis {
        &self.failure
    }

    /// Direct (test-bench) view of a stored word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn peek(&self, addr: usize) -> u64 {
        self.storage[addr]
    }

    fn word_mask(&self) -> u64 {
        if self.config.word_bits == 64 {
            u64::MAX
        } else {
            (1 << self.config.word_bits) - 1
        }
    }

    fn energy_factor(disc: TimingDiscipline) -> f64 {
        match disc {
            // The published numbers were measured on the SI design.
            TimingDiscipline::Completion => 1.0,
            // No completion network; delay lines are cheap.
            TimingDiscipline::Bundled { .. } => 0.85,
            // One column of completion detection out of the word width.
            TimingDiscipline::Replica { .. } => 0.92,
        }
    }

    /// Latency of the given op at constant `vdd` under `disc`, together
    /// with whether the timing is actually *met* (bundled/replica may
    /// mistime).
    fn latency_and_correct(&self, op: Op, vdd: Volts, disc: TimingDiscipline) -> (Seconds, bool) {
        let phases: &[Phase] = match op {
            Op::Read => &Phase::READ,
            Op::Write => &Phase::WRITE,
        };
        match disc {
            TimingDiscipline::Completion => {
                let t = match op {
                    Op::Read => self.timing.read_latency(vdd, self.completion_phases),
                    Op::Write => self.timing.write_latency(vdd, self.completion_phases),
                };
                (t, self.senses_reliably(vdd))
            }
            TimingDiscipline::Bundled { design_vdd, margin } => {
                let inv = self.config.device.inverter_delay(vdd);
                let mut total_units = 0.0;
                let mut met = true;
                for &p in phases {
                    let budget = margin * self.timing.phase_inverter_units(p, design_vdd);
                    let needed = self.timing.phase_inverter_units(p, vdd);
                    if needed > budget {
                        met = false;
                    }
                    total_units += budget;
                }
                (
                    Seconds(inv.0 * total_units),
                    met && self.senses_reliably(vdd),
                )
            }
            TimingDiscipline::Replica { margin } => {
                // The replica column completes genuinely; siblings get its
                // time × margin. Latency scales accordingly; correctness
                // at the nominal (variation-free) model is preserved —
                // statistical failures live in `FailureAnalysis`.
                let t = match op {
                    Op::Read => self.timing.read_latency(vdd, 1),
                    Op::Write => self.timing.write_latency(vdd, 1),
                };
                (t * margin, self.senses_reliably(vdd))
            }
        }
    }

    /// Reads `addr` at constant `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_at(&self, vdd: Volts, addr: usize, disc: TimingDiscipline) -> AccessOutcome {
        let word = self.storage[addr];
        let (latency, correct) = self.latency_and_correct(Op::Read, vdd, disc);
        let energy =
            self.energy.access_energy(&self.timing, Op::Read, vdd) * Self::energy_factor(disc);
        let completed = latency.0.is_finite();
        let outcome = AccessOutcome {
            data: if correct && completed {
                Some(word)
            } else {
                None
            },
            correct: correct && completed,
            latency,
            energy: if completed { energy } else { Joules(0.0) },
            completed,
        };
        if let Some(o) = &self.obs {
            o.borrow_mut().record(Op::Read, &outcome);
        }
        outcome
    }

    /// Writes `word` to `addr` at constant `vdd`. A mistimed bundled
    /// write commits only the bits whose drivers finished in the timing
    /// budget (low bits first) — the silent partial-write corruption of a
    /// real bundling violation.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `word` exceeds the word width.
    pub fn write_at(
        &mut self,
        vdd: Volts,
        addr: usize,
        word: u64,
        disc: TimingDiscipline,
    ) -> AccessOutcome {
        assert!(word <= self.word_mask(), "word exceeds width");
        let (latency, correct) = self.latency_and_correct(Op::Write, vdd, disc);
        let completed = latency.0.is_finite();
        if completed {
            if correct {
                self.storage[addr] = word;
            } else {
                // Partial write: the fraction of the needed drive time
                // that the (too short) budget covered.
                let frac = self.write_budget_fraction(vdd, disc);
                let bits = (self.config.word_bits as f64 * frac.clamp(0.0, 1.0)) as u32;
                let mask = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
                self.storage[addr] = (self.storage[addr] & !mask) | (word & mask);
            }
        }
        let energy =
            self.energy.access_energy(&self.timing, Op::Write, vdd) * Self::energy_factor(disc);
        let outcome = AccessOutcome {
            data: Some(word),
            correct: correct && completed,
            latency,
            energy: if completed { energy } else { Joules(0.0) },
            completed,
        };
        if let Some(o) = &self.obs {
            o.borrow_mut().record(Op::Write, &outcome);
        }
        outcome
    }

    fn write_budget_fraction(&self, vdd: Volts, disc: TimingDiscipline) -> f64 {
        match disc {
            TimingDiscipline::Bundled { design_vdd, margin } => {
                let budget = margin
                    * self
                        .timing
                        .phase_inverter_units(Phase::WriteDrive, design_vdd);
                let needed = self.timing.phase_inverter_units(Phase::WriteDrive, vdd);
                budget / needed
            }
            _ => 1.0,
        }
    }

    /// Reads under a time-varying supply, starting at `t0`: each phase's
    /// duration solves the work integral over the waveform (the SI
    /// controller genuinely waits; Fig. 7's slow-then-fast writes fall
    /// out of this).
    ///
    /// Only the [`TimingDiscipline::Completion`] engine is meaningful
    /// under varying supply; call it through this method.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_under(
        &self,
        supply: &Waveform,
        t0: Seconds,
        addr: usize,
        resolution: Seconds,
        horizon: Seconds,
    ) -> AccessOutcome {
        let word = self.storage[addr];
        let (t_end, completed) = self.phases_under(&Phase::READ, supply, t0, resolution, horizon);
        let v_end = Volts(supply.value_at(t_end));
        let correct = completed && self.senses_reliably(v_end);
        let energy = if completed {
            self.energy.access_energy(
                &self.timing,
                Op::Read,
                Volts(supply.value_at(t0).max(v_end.0)),
            )
        } else {
            Joules(0.0)
        };
        let outcome = AccessOutcome {
            data: if correct { Some(word) } else { None },
            correct,
            latency: Seconds(t_end.0 - t0.0),
            energy,
            completed,
        };
        if let Some(o) = &self.obs {
            let mut o = o.borrow_mut();
            o.record(Op::Read, &outcome);
            o.record_span(Op::Read, addr, t0, t_end);
        }
        outcome
    }

    /// Writes under a time-varying supply (see [`Self::read_under`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `word` exceeds the word width.
    pub fn write_under(
        &mut self,
        supply: &Waveform,
        t0: Seconds,
        addr: usize,
        word: u64,
        resolution: Seconds,
        horizon: Seconds,
    ) -> AccessOutcome {
        assert!(word <= self.word_mask(), "word exceeds width");
        let (t_end, completed) = self.phases_under(&Phase::WRITE, supply, t0, resolution, horizon);
        if completed {
            self.storage[addr] = word;
        }
        let v_rep = Volts(supply.value_at(t_end));
        let energy = if completed {
            self.energy
                .access_energy(&self.timing, Op::Write, v_rep.max(Volts(0.2)))
        } else {
            Joules(0.0)
        };
        let outcome = AccessOutcome {
            data: Some(word),
            correct: completed,
            latency: Seconds(t_end.0 - t0.0),
            energy,
            completed,
        };
        if let Some(o) = &self.obs {
            let mut o = o.borrow_mut();
            o.record(Op::Write, &outcome);
            o.record_span(Op::Write, addr, t0, t_end);
        }
        outcome
    }

    /// Runs the phase sequence (plus completion settles) under the
    /// supply waveform; returns the end time and whether it completed.
    fn phases_under(
        &self,
        phases: &[Phase],
        supply: &Waveform,
        t0: Seconds,
        resolution: Seconds,
        horizon: Seconds,
    ) -> (Seconds, bool) {
        let mut t = t0;
        let run = |phase: Phase, t: Seconds| -> Option<Seconds> {
            let td = |at: Seconds| self.timing.phase_latency(phase, Volts(supply.value_at(at)));
            match completion_time(t, td, resolution, horizon) {
                Completion::At(end) => Some(end),
                Completion::StalledUntilHorizon { .. } => None,
            }
        };
        for &p in phases {
            match run(p, t) {
                Some(end) => t = end,
                None => return (horizon, false),
            }
        }
        for _ in 0..self.completion_phases {
            match run(Phase::Completion, t) {
                Some(end) => t = end,
                None => return (horizon, false),
            }
        }
        (t, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> Sram {
        Sram::new(SramConfig::paper_1kbit())
    }

    #[test]
    fn write_then_read_round_trip_across_vdd() {
        let mut s = sram();
        for (i, v) in [0.25, 0.4, 0.7, 1.0].iter().enumerate() {
            let w = s.write_at(
                Volts(*v),
                i,
                0x1234 + i as u64,
                TimingDiscipline::Completion,
            );
            assert!(w.correct, "write failed at {v} V");
            let r = s.read_at(Volts(*v), i, TimingDiscipline::Completion);
            assert_eq!(r.data, Some(0x1234 + i as u64));
            assert!(r.correct);
        }
    }

    #[test]
    fn energy_anchors_visible_through_api() {
        let mut s = sram();
        let w1 = s.write_at(Volts(1.0), 0, 1, TimingDiscipline::Completion);
        let w04 = s.write_at(Volts(0.4), 0, 2, TimingDiscipline::Completion);
        assert!(
            (w1.energy.0 - 5.8e-12).abs() < 1e-14,
            "E(1V) = {}",
            w1.energy
        );
        assert!(
            (w04.energy.0 - 1.9e-12).abs() < 1e-14,
            "E(0.4V) = {}",
            w04.energy
        );
    }

    #[test]
    fn completion_discipline_slower_but_correct_at_low_vdd() {
        let mut s = sram();
        s.write_at(Volts(1.0), 5, 0xABCD, TimingDiscipline::Completion);
        let si = s.read_at(Volts(0.25), 5, TimingDiscipline::Completion);
        assert!(si.correct);
        assert_eq!(si.data, Some(0xABCD));
        let bundled = s.read_at(Volts(0.25), 5, TimingDiscipline::bundled_nominal());
        assert!(!bundled.correct, "bundled must mistime at 0.25 V");
        assert_eq!(bundled.data, None);
    }

    #[test]
    fn bundled_faster_and_cheaper_at_nominal() {
        let mut s = sram();
        s.write_at(Volts(1.0), 1, 7, TimingDiscipline::Completion);
        let si = s.read_at(Volts(1.0), 1, TimingDiscipline::Completion);
        let b = s.read_at(Volts(1.0), 1, TimingDiscipline::bundled_nominal());
        assert!(b.correct);
        assert_eq!(b.data, Some(7));
        assert!(
            b.energy < si.energy,
            "bundled energy {} vs SI {}",
            b.energy,
            si.energy
        );
        // The 2× margin makes bundled *latency* similar or worse; its win
        // is energy. Correctness of the comparison matters, not order.
        assert!(si.correct);
    }

    #[test]
    fn bundled_write_corrupts_partially_below_failure_voltage() {
        let mut s = sram();
        s.write_at(Volts(1.0), 9, 0x0000, TimingDiscipline::Completion);
        let w = s.write_at(Volts(0.2), 9, 0xFFFF, TimingDiscipline::bundled_nominal());
        assert!(!w.correct);
        let stored = s.peek(9);
        assert_ne!(stored, 0xFFFF, "mistimed write must not complete");
        // Low bits (near the drivers) did get written.
        assert_ne!(stored, 0x0000, "some bits should have been driven");
    }

    #[test]
    fn replica_latency_between_bundled_and_completion_at_nominal() {
        let mut s = sram();
        s.write_at(Volts(1.0), 2, 3, TimingDiscipline::Completion);
        let si = s.read_at(Volts(1.0), 2, TimingDiscipline::Completion);
        let rep = s.read_at(Volts(1.0), 2, TimingDiscipline::replica_default());
        assert!(rep.correct);
        assert!(rep.energy < si.energy);
    }

    #[test]
    fn fig7_scenario_slow_write_low_vdd_fast_write_high_vdd() {
        let mut s = sram();
        // Supply ramps from 0.25 V to 1 V at t = 10 µs.
        let supply = Waveform::pwl([
            (Seconds(0.0), 0.25),
            (Seconds(10e-6), 0.25),
            (Seconds(11e-6), 1.0),
        ]);
        let res = Seconds(50e-9);
        let horizon = Seconds(1.0);
        let w_slow = s.write_under(&supply, Seconds(0.0), 0, 0xAAAA, res, horizon);
        assert!(w_slow.correct, "low-Vdd write must still complete");
        let w_fast = s.write_under(&supply, Seconds(12e-6), 1, 0x5555, res, horizon);
        assert!(w_fast.correct);
        assert!(
            w_slow.latency.0 > 10.0 * w_fast.latency.0,
            "slow {} vs fast {}",
            w_slow.latency,
            w_fast.latency
        );
        assert_eq!(s.peek(0), 0xAAAA);
        assert_eq!(s.peek(1), 0x5555);
    }

    #[test]
    fn write_straddling_the_ramp_finishes_after_it() {
        let mut s = sram();
        let supply = Waveform::pwl([
            (Seconds(0.0), 0.0),
            (Seconds(5e-6), 0.0),
            (Seconds(5.5e-6), 0.8),
        ]);
        // Starts while the supply is dead: all the work happens after the
        // ramp at 5 µs.
        let w = s.write_under(
            &supply,
            Seconds(0.0),
            3,
            0x00FF,
            Seconds(20e-9),
            Seconds(1.0),
        );
        assert!(w.correct);
        assert!(
            w.latency.0 > 5e-6,
            "latency {} must include the dead time",
            w.latency
        );
    }

    #[test]
    fn dead_supply_never_completes() {
        let mut s = sram();
        let supply = Waveform::constant(0.05);
        let w = s.write_under(&supply, Seconds(0.0), 0, 1, Seconds(1e-6), Seconds(1e-3));
        assert!(!w.completed);
        assert!(!w.correct);
        assert_eq!(s.peek(0), 0);
        assert_eq!(w.energy, Joules(0.0));
    }

    #[test]
    fn read_latency_ratio_between_0v19_and_1v_is_large() {
        let s = sram();
        let fast = s
            .read_at(Volts(1.0), 0, TimingDiscipline::Completion)
            .latency;
        let slow = s
            .read_at(Volts(0.19), 0, TimingDiscipline::Completion)
            .latency;
        // Inverter slowdown (~1000×) times the mismatch growth (~3×).
        let ratio = slow.0 / fast.0;
        assert!(ratio > 500.0, "ratio {ratio}");
    }

    #[test]
    fn telemetry_counts_accesses_and_books_energy() {
        let mut s = sram();
        s.enable_obs();
        let w = s.write_at(Volts(1.0), 0, 0xBEEF, TimingDiscipline::Completion);
        let r = s.read_at(Volts(1.0), 0, TimingDiscipline::Completion);
        let bad = s.read_at(Volts(0.25), 0, TimingDiscipline::bundled_nominal());
        assert!(!bad.correct);
        let t = s.telemetry();
        assert_eq!(t.metrics.counter_value("sram.reads"), Some(2));
        assert_eq!(t.metrics.counter_value("sram.writes"), Some(1));
        assert_eq!(t.metrics.counter_value("sram.accesses_mistimed"), Some(1));
        let booked = t
            .energy
            .get("op/read", EnergyKind::Dissipated)
            .expect("read energy booked");
        assert!((booked - (r.energy.0 + bad.energy.0)).abs() < 1e-20);
        assert!(
            (t.energy.get("op/write", EnergyKind::Dissipated).unwrap() - w.energy.0).abs() < 1e-20
        );
        // Spans only come from the *_under engines.
        assert!(t.spans.is_empty());
        let supply = Waveform::constant(0.8);
        s.write_under(&supply, Seconds(0.0), 1, 0x55, Seconds(50e-9), Seconds(1.0));
        let t = s.telemetry();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans.spans()[0].cat, "sram");
        assert!(t.spans.spans()[0].duration() > 0.0);
    }

    #[test]
    fn disabled_obs_yields_empty_telemetry() {
        let mut s = sram();
        let _ = s.write_at(Volts(1.0), 0, 1, TimingDiscipline::Completion);
        assert!(!s.obs_enabled());
        let t = s.telemetry();
        assert!(t.metrics.is_empty());
        assert!(t.energy.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_word_panics() {
        let mut s = sram();
        let _ = s.write_at(Volts(1.0), 0, 0x1_0000, TimingDiscipline::Completion);
    }

    #[test]
    #[should_panic]
    fn out_of_range_address_panics() {
        let s = sram();
        let _ = s.read_at(Volts(1.0), 64, TimingDiscipline::Completion);
    }
}
