//! Speed-independent SRAM with completion detection, plus the
//! delay-line (bundled) and replica-column baselines.
//!
//! This crate reproduces Section III-A of *Energy-modulated computing*:
//! a 1-kbit (64 × 16) 6T SRAM designed to work from 0.2 V to 1 V under an
//! unstable supply. The crux is the paper's Fig. 5: **SRAM bit lines and
//! logic gates scale differently with Vdd** (50 inverter delays per read
//! at 1 V, 158 at 190 mV), so a fixed delay line matched at nominal
//! supply *cannot* time the array at low voltage. Three timing
//! disciplines are provided:
//!
//! * [`TimingDiscipline::Completion`] — the paper's design \[7\]: genuine
//!   completion detection on every column; write completion solved by
//!   **reading before writing** and waiting for bit-line/new-data
//!   equality. Correct at any operating voltage, costs extra detection
//!   logic (latency and energy overhead at nominal supply);
//! * [`TimingDiscipline::Bundled`] — conventional: every phase timed by
//!   an inverter delay line sized with a safety margin at a chosen
//!   design voltage. Fast and cheap at that voltage; **silently corrupts
//!   data** once the Fig. 5 mismatch eats the margin;
//! * [`TimingDiscipline::Replica`] — the "smart latency bundling" of \[8\]:
//!   one replica column carries completion detection and times its 15
//!   sibling columns, vulnerable only to column-to-column variation.
//!
//! The energy model is calibrated to the paper's published numbers —
//! 5.8 pJ per 16-bit write at 1 V, 1.9 pJ at 0.4 V, minimum energy point
//! at 0.4 V — and the access engine evaluates phase latencies under an
//! arbitrary supply [`Waveform`](emc_units::Waveform), reproducing the
//! slow-write/fast-write trace of Fig. 7.
//!
//! # Examples
//!
//! ```
//! use emc_sram::{SramConfig, Sram, TimingDiscipline};
//! use emc_units::Volts;
//!
//! let mut sram = Sram::new(SramConfig::paper_1kbit());
//! let w = sram.write_at(Volts(0.4), 3, 0xBEEF, TimingDiscipline::Completion);
//! assert!(w.correct);
//! let r = sram.read_at(Volts(0.4), 3, TimingDiscipline::Completion);
//! assert_eq!(r.data, Some(0xBEEF));
//! // Near the paper's minimum-energy point: ≈1.9 pJ per 16-bit write.
//! assert!(w.energy.0 > 1e-12 && w.energy.0 < 3e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod energy;
pub mod failure;
pub mod sram;
pub mod timing;
pub mod workload;

pub use cell::CellKind;
pub use energy::EnergyCalibration;
pub use failure::FailureAnalysis;
pub use sram::{AccessOutcome, Sram, SramConfig, TimingDiscipline};
pub use timing::{Phase, SramTiming};
pub use workload::{replay, AddressPattern, MemOp, MemoryWorkload, WorkloadReport};
