//! Failure and corner analysis of the SRAM timing disciplines
//! (the analysis of \[8\] in the paper).

use emc_device::{DeviceModel, ProcessCorner, VariationModel};
use emc_prng::Rng;
use emc_units::Volts;

use crate::cell::CellKind;
use crate::timing::{Phase, SramTiming};

/// One row of the corner table.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerRow {
    /// The process corner analysed.
    pub corner: ProcessCorner,
    /// Lowest Vdd at which a read still senses correctly.
    pub min_vdd: Volts,
    /// Read latency at 0.3 V (completion discipline), seconds.
    pub read_latency_0v3: f64,
}

/// Failure analysis over one SRAM configuration.
#[derive(Debug, Clone)]
pub struct FailureAnalysis {
    rows: usize,
    segments: usize,
    cell: CellKind,
    /// Fraction of the precharged level the bit line may droop through
    /// aggressor leakage before sensing becomes unreliable.
    droop_margin: f64,
}

impl FailureAnalysis {
    /// Analysis for an array of `rows` words with `segments` completion
    /// segments per column and the given cell flavour.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `segments` is zero, or `segments > rows`.
    pub fn new(rows: usize, segments: usize, cell: CellKind) -> Self {
        assert!(rows > 0 && segments > 0 && segments <= rows, "bad geometry");
        Self {
            rows,
            segments,
            cell,
            droop_margin: 0.2,
        }
    }

    /// The sensing-failure criterion at `vdd` for a given device: during
    /// the bit-line development time, the unaccessed cells' leakage
    /// droops the opposite bit line; sensing fails when the droop exceeds
    /// the margin. Returns the droop as a fraction of `vdd`.
    ///
    /// Droop = (I_leak_per_cell · cells_per_segment · t_bitline) / C_segment,
    /// with C_segment ∝ cells_per_segment, so the droop scales with the
    /// *total column length over segments* — the exact reason §III-A
    /// proposes segmenting the completion detection to push the low-Vdd
    /// limit into sub-threshold.
    pub fn relative_droop(&self, device: &DeviceModel, vdd: Volts) -> f64 {
        let timing = SramTiming::new(device.clone(), self.rows, self.segments, self.cell);
        let t_bl = timing.phase_latency(Phase::BitLine, vdd);
        if !t_bl.0.is_finite() {
            return f64::INFINITY;
        }
        let i_cell = device.leakage_current(vdd).0 * self.cell.leakage_factor();
        let cells_per_segment = self.rows as f64 / self.segments as f64;
        // Per-cell bit-line capacitance contribution (drain junction).
        let c_per_cell = device.params().drain_cap.0;
        let c_segment = c_per_cell * cells_per_segment;
        let droop_v = i_cell * cells_per_segment * t_bl.0 / c_segment;
        droop_v / vdd.0
    }

    /// `true` if a read senses reliably at `vdd`.
    pub fn read_ok(&self, device: &DeviceModel, vdd: Volts) -> bool {
        self.relative_droop(device, vdd) < self.droop_margin
    }

    /// Lowest operating voltage (10 mV resolution) at which reads sense
    /// reliably, searching down from 1 V. Returns `None` if the array
    /// fails even at 1 V.
    pub fn min_operating_voltage(&self, device: &DeviceModel) -> Option<Volts> {
        if !self.read_ok(device, Volts(1.0)) {
            return None;
        }
        let mut v = 1.0;
        while v > 0.10 {
            let next = v - 0.01;
            if !self.read_ok(device, Volts(next)) {
                return Some(Volts(v));
            }
            v = next;
        }
        Some(Volts(v))
    }

    /// The corner table: minimum operating voltage and 0.3 V read latency
    /// across the five corners.
    pub fn corner_table(&self, base: &DeviceModel) -> Vec<CornerRow> {
        ProcessCorner::ALL
            .iter()
            .map(|&corner| {
                let device = DeviceModel::new(base.params().at_corner(corner));
                let min_vdd = self
                    .min_operating_voltage(&device)
                    .unwrap_or(Volts(f64::NAN));
                let timing = SramTiming::new(device, self.rows, self.segments, self.cell);
                CornerRow {
                    corner,
                    min_vdd,
                    read_latency_0v3: timing.read_latency(Volts(0.3), 2).0,
                }
            })
            .collect()
    }

    /// Voltage below which a **bundled** (delay-line) design with the
    /// given margin, sized at `design_vdd`, mistimes the bit-line phase:
    /// the delay line tracks inverters while the bit line follows the
    /// Fig. 5 mismatch, so the line is too short once
    /// `ratio(v) > margin · ratio(design_vdd)`.
    ///
    /// Returns `None` if the margin holds everywhere above 0.11 V.
    pub fn bundled_failure_voltage(
        &self,
        device: &DeviceModel,
        design_vdd: Volts,
        margin: f64,
    ) -> Option<Volts> {
        assert!(margin >= 1.0, "a bundled design needs margin >= 1");
        let timing = SramTiming::new(device.clone(), self.rows, self.segments, self.cell);
        let budget = margin * timing.phase_inverter_units(Phase::BitLine, design_vdd);
        let mut v = design_vdd.0;
        while v > 0.11 {
            if timing.phase_inverter_units(Phase::BitLine, Volts(v)) > budget {
                return Some(Volts(v));
            }
            v -= 0.005;
        }
        None
    }

    /// Monte-Carlo failure probability of the **replica-column** design
    /// at `vdd`: the replica column times its siblings, so an access
    /// fails when some data column is slower than the replica's margined
    /// completion time under column-to-column Vt variation.
    #[allow(clippy::too_many_arguments)] // mirrors the experiment's knobs
    pub fn replica_failure_probability<R: Rng + ?Sized>(
        &self,
        device: &DeviceModel,
        vdd: Volts,
        sigma_vt: f64,
        replica_margin: f64,
        columns: usize,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(trials > 0 && columns > 0, "need trials and columns");
        let var = VariationModel::new(sigma_vt);
        let mut failures = 0usize;
        for _ in 0..trials {
            let replica = var.delay_multiplier(device, vdd, rng);
            let budget = replica * replica_margin;
            let any_slow = (0..columns).any(|_| var.delay_multiplier(device, vdd, rng) > budget);
            if any_slow {
                failures += 1;
            }
        }
        failures as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emc_prng::StdRng;

    fn fa() -> FailureAnalysis {
        FailureAnalysis::new(64, 1, CellKind::SixT)
    }

    #[test]
    fn droop_grows_as_vdd_falls() {
        let d = DeviceModel::umc90();
        let a = fa().relative_droop(&d, Volts(1.0));
        let b = fa().relative_droop(&d, Volts(0.25));
        assert!(b > a, "droop at 0.25 V ({b}) vs 1 V ({a})");
    }

    #[test]
    fn min_operating_voltage_in_plausible_band() {
        let d = DeviceModel::umc90();
        let v = fa().min_operating_voltage(&d).expect("works at 1 V");
        // The paper's SI SRAM operates to ≈0.2 V with margin to spare.
        assert!((0.11..0.35).contains(&v.0), "min Vdd = {v}");
    }

    #[test]
    fn segmentation_pushes_min_vdd_down() {
        let d = DeviceModel::umc90();
        let full = fa().min_operating_voltage(&d).unwrap();
        let seg8 = FailureAnalysis::new(64, 8, CellKind::SixT)
            .min_operating_voltage(&d)
            .unwrap();
        assert!(
            seg8 < full,
            "8-way segmentation ({seg8}) must beat full column ({full})"
        );
    }

    #[test]
    fn eight_t_cells_leak_less_and_go_lower() {
        let d = DeviceModel::umc90();
        let v6 = fa().min_operating_voltage(&d).unwrap();
        let v8 = FailureAnalysis::new(64, 1, CellKind::EightT)
            .min_operating_voltage(&d)
            .unwrap();
        assert!(v8 <= v6, "8T ({v8}) should not be worse than 6T ({v6})");
    }

    #[test]
    fn corner_table_covers_all_corners() {
        let d = DeviceModel::umc90();
        let table = fa().corner_table(&d);
        assert_eq!(table.len(), 5);
        // Slow-slow is the worst corner for minimum voltage.
        let tt = table
            .iter()
            .find(|r| r.corner == ProcessCorner::Typical)
            .unwrap();
        let ss = table
            .iter()
            .find(|r| r.corner == ProcessCorner::SlowSlow)
            .unwrap();
        assert!(ss.read_latency_0v3 > tt.read_latency_0v3);
    }

    #[test]
    fn bundled_design_fails_at_low_voltage() {
        let d = DeviceModel::umc90();
        let v_fail = fa()
            .bundled_failure_voltage(&d, Volts(1.0), 2.0)
            .expect("a 2x margin cannot cover the 3.16x Fig. 5 growth");
        // The mismatch curve is steep around threshold: a 2× margin dies
        // in the 0.3 – 0.5 V region, well above the 0.2 V the paper's SI
        // design reaches.
        assert!(
            (0.25..0.55).contains(&v_fail.0),
            "bundled failure at {v_fail}"
        );
        // A big enough margin covers the whole range.
        assert!(fa().bundled_failure_voltage(&d, Volts(1.0), 4.0).is_none());
    }

    #[test]
    fn bundled_failure_voltage_monotone_in_margin() {
        let d = DeviceModel::umc90();
        let m15 = fa().bundled_failure_voltage(&d, Volts(1.0), 1.5).unwrap();
        let m25 = fa().bundled_failure_voltage(&d, Volts(1.0), 2.5).unwrap();
        assert!(m15 > m25, "more margin must fail lower: {m15} vs {m25}");
    }

    #[test]
    fn replica_failure_grows_in_subthreshold() {
        let d = DeviceModel::umc90();
        let mut rng = StdRng::seed_from_u64(17);
        let f = fa();
        let p_nom = f.replica_failure_probability(&d, Volts(1.0), 0.03, 1.3, 15, 400, &mut rng);
        let p_sub = f.replica_failure_probability(&d, Volts(0.2), 0.03, 1.3, 15, 400, &mut rng);
        assert!(
            p_sub > p_nom + 0.1,
            "sub-threshold replica failure {p_sub} vs nominal {p_nom}"
        );
    }

    #[test]
    #[should_panic(expected = "margin >= 1")]
    fn sub_unity_margin_panics() {
        let d = DeviceModel::umc90();
        let _ = fa().bundled_failure_voltage(&d, Volts(1.0), 0.5);
    }
}
