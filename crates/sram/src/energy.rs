//! Energy-per-access calibration against the paper's published numbers.
//!
//! The paper reports for the 1-kbit SI SRAM in UMC 90 nm: **5.8 pJ per
//! 16-bit write at Vdd = 1 V, 1.9 pJ at 0.4 V, with the minimum energy
//! point at 0.4 V**. Energy per access decomposes as
//!
//! ```text
//! E(V) = A·V²  +  B·P_leak(V)·t_access(V)
//!        dynamic   static (leakage over the — exploding — access time)
//! ```
//!
//! with `A` the switched capacitance of one access and `B` the macro's
//! leakage width in unit gates. [`EnergyCalibration::solve`] inverts the
//! two published anchors for `(A, B)` as a 2×2 linear system; the
//! *minimum energy point falling at ≈0.4 V is then a prediction*, not an
//! input, and the test suite checks it.

use emc_units::{Joules, Volts};

use crate::timing::SramTiming;

/// Operation flavour for energy queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A read access.
    Read,
    /// A 16-bit write access (read-before-write included).
    Write,
}

/// Errors from [`EnergyCalibration::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveEnergyError {
    /// Human-readable reason the anchors are unsatisfiable.
    reason: String,
}

impl core::fmt::Display for SolveEnergyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "energy calibration unsolvable: {}", self.reason)
    }
}

impl std::error::Error for SolveEnergyError {}

/// Solved energy model of one SRAM macro.
#[derive(Debug, Clone)]
pub struct EnergyCalibration {
    /// Switched capacitance per write access, farads.
    cap_write: f64,
    /// Leakage width in unit gates.
    leak_units: f64,
    /// Reads switch fewer lines full-swing.
    read_fraction: f64,
    completion_phases: usize,
}

/// The paper's nominal-voltage anchor: 5.8 pJ per 16-bit write at 1 V.
pub const WRITE_ENERGY_1V: Joules = Joules(5.8e-12);

/// The paper's low-voltage anchor: 1.9 pJ per 16-bit write at 0.4 V.
pub const WRITE_ENERGY_0V4: Joules = Joules(1.9e-12);

impl EnergyCalibration {
    /// Solves the `(A, B)` pair against the paper's anchors for the given
    /// timing model, assuming `completion_phases` completion-detected
    /// phases per access (the SI discipline's overhead is *included* in
    /// the published numbers, which were measured on the SI design).
    ///
    /// # Errors
    ///
    /// Returns an error if the anchors would require negative switched
    /// capacitance or leakage.
    pub fn solve(timing: &SramTiming, completion_phases: usize) -> Result<Self, SolveEnergyError> {
        let g = |v: Volts| {
            let t = timing.write_latency(v, completion_phases);
            (timing.device().leakage_power(v) * t.0).0
        };
        let (v1, e1) = (Volts(1.0), WRITE_ENERGY_1V.0);
        let (v2, e2) = (Volts(0.4), WRITE_ENERGY_0V4.0);
        // A·v1² + B·g1 = e1 ;  A·v2² + B·g2 = e2.
        let (g1, g2) = (g(v1), g(v2));
        let det = v1.0 * v1.0 * g2 - v2.0 * v2.0 * g1;
        if det.abs() < 1e-40 {
            return Err(SolveEnergyError {
                reason: "anchor system is singular".into(),
            });
        }
        let a = (e1 * g2 - e2 * g1) / det;
        let b = (v1.0 * v1.0 * e2 - v2.0 * v2.0 * e1) / det;
        if a <= 0.0 || b <= 0.0 {
            return Err(SolveEnergyError {
                reason: format!("non-physical solution A = {a}, B = {b}"),
            });
        }
        Ok(Self {
            cap_write: a,
            leak_units: b,
            read_fraction: 0.55,
            completion_phases,
        })
    }

    /// Switched capacitance per write access.
    pub fn cap_write(&self) -> f64 {
        self.cap_write
    }

    /// Leakage width (unit gates).
    pub fn leak_units(&self) -> f64 {
        self.leak_units
    }

    /// Energy of one access at constant `vdd` under the calibrated SI
    /// discipline.
    pub fn access_energy(&self, timing: &SramTiming, op: Op, vdd: Volts) -> Joules {
        let (frac, latency) = match op {
            Op::Read => (
                self.read_fraction,
                timing.read_latency(vdd, self.completion_phases),
            ),
            Op::Write => (1.0, timing.write_latency(vdd, self.completion_phases)),
        };
        let dynamic = self.cap_write * frac * vdd.0 * vdd.0;
        let leak = (timing.device().leakage_power(vdd) * self.leak_units * latency.0).0;
        Joules(dynamic + leak)
    }

    /// Static (retention) power of the whole macro at `vdd`, scaled by
    /// the cell flavour's leakage factor.
    pub fn retention_power(
        &self,
        timing: &SramTiming,
        vdd: Volts,
        cell_leak_factor: f64,
    ) -> emc_units::Watts {
        timing.device().leakage_power(vdd) * self.leak_units * cell_leak_factor
    }

    /// Sweeps energy per access over `[v_lo, v_hi]` and returns the
    /// voltage minimising it — the minimum-energy point the paper puts
    /// at 0.4 V.
    ///
    /// # Panics
    ///
    /// Panics if the interval is inverted or `n < 2`.
    pub fn minimum_energy_point(
        &self,
        timing: &SramTiming,
        op: Op,
        v_lo: Volts,
        v_hi: Volts,
        n: usize,
    ) -> (Volts, Joules) {
        assert!(n >= 2 && v_hi > v_lo, "bad sweep parameters");
        let mut best = (v_lo, Joules(f64::INFINITY));
        for i in 0..n {
            let v = Volts(v_lo.0 + (v_hi.0 - v_lo.0) * i as f64 / (n - 1) as f64);
            let e = self.access_energy(timing, op, v);
            if e < best.1 {
                best = (v, e);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use emc_device::DeviceModel;

    fn rig() -> (SramTiming, EnergyCalibration) {
        let timing = SramTiming::new(DeviceModel::umc90(), 64, 1, CellKind::SixT);
        let cal = EnergyCalibration::solve(&timing, 2).expect("anchors solvable");
        (timing, cal)
    }

    #[test]
    fn anchors_are_reproduced() {
        let (t, c) = rig();
        let e1 = c.access_energy(&t, Op::Write, Volts(1.0));
        let e2 = c.access_energy(&t, Op::Write, Volts(0.4));
        assert!((e1.0 - 5.8e-12).abs() < 1e-15, "E(1 V) = {e1}");
        assert!((e2.0 - 1.9e-12).abs() < 1e-15, "E(0.4 V) = {e2}");
    }

    #[test]
    fn minimum_energy_point_is_predicted_near_0v4() {
        let (t, c) = rig();
        let (v_min, e_min) = c.minimum_energy_point(&t, Op::Write, Volts(0.15), Volts(1.0), 400);
        assert!(
            (0.3..=0.5).contains(&v_min.0),
            "minimum energy point at {v_min}, paper says 0.4 V"
        );
        assert!(e_min <= c.access_energy(&t, Op::Write, Volts(0.4)));
    }

    #[test]
    fn energy_rises_below_the_minimum_point() {
        let (t, c) = rig();
        let (v_min, _) = c.minimum_energy_point(&t, Op::Write, Volts(0.15), Volts(1.0), 400);
        let below = c.access_energy(&t, Op::Write, Volts(v_min.0 - 0.1));
        let at = c.access_energy(&t, Op::Write, v_min);
        assert!(below > at, "leakage must dominate below the MEP");
    }

    #[test]
    fn reads_cheaper_than_writes() {
        let (t, c) = rig();
        for v in [0.3, 0.4, 0.7, 1.0] {
            assert!(
                c.access_energy(&t, Op::Read, Volts(v)) < c.access_energy(&t, Op::Write, Volts(v))
            );
        }
    }

    #[test]
    fn solved_parameters_are_physical() {
        let (_, c) = rig();
        // Switched capacitance of a 1-kbit access: hundreds of fF to a
        // few pF is the plausible range.
        assert!(
            c.cap_write() > 1e-13 && c.cap_write() < 2e-11,
            "A = {}",
            c.cap_write()
        );
        assert!(
            c.leak_units() > 10.0 && c.leak_units() < 1e6,
            "B = {}",
            c.leak_units()
        );
    }

    #[test]
    fn retention_power_scales_with_cell_factor() {
        let (t, c) = rig();
        let p6 = c.retention_power(&t, Volts(0.5), CellKind::SixT.leakage_factor());
        let p8 = c.retention_power(&t, Volts(0.5), CellKind::EightT.leakage_factor());
        assert!(p8.0 < p6.0 * 0.5);
    }
}
