//! Phase-level timing of an SRAM access, derived from the calibrated
//! device model.
//!
//! The SRAM is modelled at the granularity the paper's Fig. 6 draws: the
//! handshake phases of the controller (precharge, word line, bit-line
//! transient, sense / write drive, completion detection). Every phase
//! latency is expressed in *inverter delays at the prevailing Vdd* — the
//! logic phases with constant factors, the bit-line phase through the
//! calibrated Fig. 5 mismatch curve, which is exactly why a delay line
//! that matches at 1 V is 3× too short at 190 mV.

use emc_device::{DeviceModel, SramLogicCalibration};
use emc_units::{Seconds, Volts};

use crate::cell::CellKind;

/// One phase of an SRAM access (the paper's Fig. 6 handshakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Pre-charging the bit lines high.
    Precharge,
    /// Address decode and word-line assertion.
    WordLine,
    /// Bit-line differential development through the cell (the phase
    /// that scales like an SRAM, not like logic — Fig. 5).
    BitLine,
    /// Sense amplification / read buffering.
    Sense,
    /// Write drivers forcing the bit lines full swing.
    WriteDrive,
    /// Completion-detection network settling (speed-independent
    /// disciplines only).
    Completion,
}

impl Phase {
    /// The phases of a read, in order.
    pub const READ: [Phase; 4] = [
        Phase::Precharge,
        Phase::WordLine,
        Phase::BitLine,
        Phase::Sense,
    ];

    /// The phases of a write *with read-before-write* (the paper's
    /// completion trick): a full read first, then the drive, then the
    /// equality check (folded into `WriteDrive` + `Completion`).
    pub const WRITE: [Phase; 5] = [
        Phase::Precharge,
        Phase::WordLine,
        Phase::BitLine,
        Phase::Sense,
        Phase::WriteDrive,
    ];
}

/// Timing model for one SRAM macro.
#[derive(Debug, Clone)]
pub struct SramTiming {
    device: DeviceModel,
    cal: SramLogicCalibration,
    rows: usize,
    segments: usize,
    cell: CellKind,
}

impl SramTiming {
    /// Builds the timing model.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `segments` is zero, or `segments > rows`.
    pub fn new(device: DeviceModel, rows: usize, segments: usize, cell: CellKind) -> Self {
        assert!(rows > 0, "rows must be positive");
        assert!(
            segments > 0 && segments <= rows,
            "segments must be in 1..=rows"
        );
        let cal = SramLogicCalibration::solve(device.clone());
        Self {
            device,
            cal,
            rows,
            segments,
            cell,
        }
    }

    /// The underlying device model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The Fig. 5 mismatch calibration in use.
    pub fn calibration(&self) -> &SramLogicCalibration {
        &self.cal
    }

    /// Rows (words) in the array.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Completion-detection segments per column.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Latency of one phase at a constant supply `vdd`, in seconds
    /// (infinite below the device floor).
    pub fn phase_latency(&self, phase: Phase, vdd: Volts) -> Seconds {
        let inv = self.device.inverter_delay(vdd);
        if inv.0.is_infinite() {
            return inv;
        }
        let in_inverters = self.phase_inverter_units(phase, vdd);
        Seconds(inv.0 * in_inverters)
    }

    /// Latency of one phase expressed in inverter delays at `vdd` — the
    /// unit of the paper's Fig. 5.
    pub fn phase_inverter_units(&self, phase: Phase, vdd: Volts) -> f64 {
        match phase {
            Phase::Precharge => 6.0,
            // Decode depth grows with log2(rows); plus word-line RC.
            Phase::WordLine => 2.0 * (self.rows as f64).log2() + 4.0,
            Phase::BitLine => {
                // The calibrated mismatch curve, divided by segmentation
                // (shorter bit-line per completion segment), plus the 8T
                // read-port elevation where applicable.
                let extra = self.cell.extra_read_vt();
                let base = if extra.0 == 0.0 {
                    self.cal.delay_ratio(vdd)
                } else {
                    // Re-evaluate the current ratio with the elevated
                    // read-stack threshold.
                    let logic = self.device.on_current(vdd).0;
                    let vt = Volts(self.cal.sram_vt().0 + extra.0);
                    let sram = self.device.on_current_with_vt(vdd, vt).0;
                    self.cal.cap_scale() * logic / sram
                };
                base / self.segments as f64
            }
            Phase::Sense => 4.0,
            // Full-swing write drive: strong drivers, half a development
            // time plus driver logic.
            Phase::WriteDrive => 10.0 + 0.5 * self.phase_inverter_units(Phase::BitLine, vdd),
            // C-element tree over the word plus the equality check.
            Phase::Completion => 8.0,
        }
    }

    /// Total read latency at constant `vdd` for the given discipline
    /// overhead (`completion_phases` = number of phases that are
    /// completion-detected and add a [`Phase::Completion`] settle).
    pub fn read_latency(&self, vdd: Volts, completion_phases: usize) -> Seconds {
        let mut t = 0.0;
        for p in Phase::READ {
            t += self.phase_latency(p, vdd).0;
        }
        t += completion_phases as f64 * self.phase_latency(Phase::Completion, vdd).0;
        Seconds(t)
    }

    /// Total write latency (read-before-write) at constant `vdd`.
    pub fn write_latency(&self, vdd: Volts, completion_phases: usize) -> Seconds {
        let mut t = 0.0;
        for p in Phase::WRITE {
            t += self.phase_latency(p, vdd).0;
        }
        t += completion_phases as f64 * self.phase_latency(Phase::Completion, vdd).0;
        Seconds(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> SramTiming {
        SramTiming::new(DeviceModel::umc90(), 64, 1, CellKind::SixT)
    }

    #[test]
    fn bitline_phase_reproduces_fig5_anchors() {
        let t = timing();
        let at_1v = t.phase_inverter_units(Phase::BitLine, Volts(1.0));
        let at_190mv = t.phase_inverter_units(Phase::BitLine, Volts(0.19));
        assert!((at_1v - 50.0).abs() < 0.5, "1 V: {at_1v} inverters");
        assert!(
            (at_190mv - 158.0).abs() < 2.0,
            "190 mV: {at_190mv} inverters"
        );
    }

    #[test]
    fn logic_phases_are_constant_in_inverter_units() {
        let t = timing();
        for p in [
            Phase::Precharge,
            Phase::WordLine,
            Phase::Sense,
            Phase::Completion,
        ] {
            let a = t.phase_inverter_units(p, Volts(1.0));
            let b = t.phase_inverter_units(p, Volts(0.2));
            assert_eq!(a, b, "{p:?} should scale exactly like an inverter");
        }
    }

    #[test]
    fn segmentation_divides_bitline_units() {
        let seg4 = SramTiming::new(DeviceModel::umc90(), 64, 4, CellKind::SixT);
        let base = timing();
        let full = base.phase_inverter_units(Phase::BitLine, Volts(0.3));
        let quarter = seg4.phase_inverter_units(Phase::BitLine, Volts(0.3));
        assert!((full / quarter - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eight_t_read_is_slightly_slower() {
        let t6 = timing();
        let t8 = SramTiming::new(DeviceModel::umc90(), 64, 1, CellKind::EightT);
        let v = Volts(0.3);
        assert!(
            t8.phase_inverter_units(Phase::BitLine, v) > t6.phase_inverter_units(Phase::BitLine, v)
        );
    }

    #[test]
    fn read_latency_about_1ns_at_nominal() {
        let t = timing();
        let lat = t.read_latency(Volts(1.0), 0);
        assert!(lat.0 > 0.5e-9 && lat.0 < 3e-9, "read latency {lat}");
    }

    #[test]
    fn write_slower_than_read() {
        let t = timing();
        for v in [0.25, 0.4, 1.0] {
            assert!(t.write_latency(Volts(v), 2) > t.read_latency(Volts(v), 2));
        }
    }

    #[test]
    fn completion_phases_add_latency() {
        let t = timing();
        assert!(t.read_latency(Volts(0.5), 3) > t.read_latency(Volts(0.5), 0));
    }

    #[test]
    fn latency_infinite_below_floor() {
        let t = timing();
        assert!(t.read_latency(Volts(0.05), 2).0.is_infinite());
    }

    #[test]
    #[should_panic(expected = "segments must be")]
    fn too_many_segments_panics() {
        let _ = SramTiming::new(DeviceModel::umc90(), 8, 16, CellKind::SixT);
    }
}
