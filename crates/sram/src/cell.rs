//! SRAM bit-cell flavours.

use emc_units::Volts;

/// The bit-cell circuit used by the array.
///
/// The paper's experimental design uses the standard 6T cell; §III-A
/// suggests switching to 8T cells (two stacked NMOS in the read path) to
/// cut leakage at the cost of area and a slightly slower read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// The standard 6-transistor cell.
    #[default]
    SixT,
    /// The 8-transistor read-decoupled cell: ~40 % larger, roughly 2.5×
    /// lower leakage (stack effect), slightly higher read-path threshold.
    EightT,
}

impl CellKind {
    /// Multiplier on cell leakage relative to the 6T cell.
    pub fn leakage_factor(self) -> f64 {
        match self {
            CellKind::SixT => 1.0,
            // Two NMOS in series in the read stack: the classic ~60 %
            // stack-effect reduction applied twice.
            CellKind::EightT => 0.4,
        }
    }

    /// Additional read-path threshold elevation relative to the 6T read
    /// stack (the decoupled 8T read port is one transistor deeper).
    pub fn extra_read_vt(self) -> Volts {
        match self {
            CellKind::SixT => Volts(0.0),
            CellKind::EightT => Volts(0.015),
        }
    }

    /// Relative cell area (layout cost reported alongside leakage wins).
    pub fn area_factor(self) -> f64 {
        match self {
            CellKind::SixT => 1.0,
            CellKind::EightT => 1.4,
        }
    }

    /// Whether reads disturb the storage node (6T reads are ratioed; the
    /// 8T read port is decoupled). Drives the read-stability margin used
    /// in failure analysis.
    pub fn read_decoupled(self) -> bool {
        matches!(self, CellKind::EightT)
    }
}

impl core::fmt::Display for CellKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CellKind::SixT => f.write_str("6T"),
            CellKind::EightT => f.write_str("8T"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_t_trades_area_for_leakage() {
        assert!(CellKind::EightT.leakage_factor() < CellKind::SixT.leakage_factor());
        assert!(CellKind::EightT.area_factor() > CellKind::SixT.area_factor());
        assert!(CellKind::EightT.extra_read_vt() > CellKind::SixT.extra_read_vt());
    }

    #[test]
    fn decoupled_read_port() {
        assert!(CellKind::EightT.read_decoupled());
        assert!(!CellKind::SixT.read_decoupled());
    }

    #[test]
    fn display_and_default() {
        assert_eq!(CellKind::default(), CellKind::SixT);
        assert_eq!(CellKind::SixT.to_string(), "6T");
        assert_eq!(CellKind::EightT.to_string(), "8T");
    }
}
