//! Memory workload generation and replay — stress testing the SRAM
//! disciplines with realistic access streams under arbitrary supplies.

use emc_prng::Rng;
use emc_units::{Joules, Seconds, Volts, Waveform};

use crate::sram::{Sram, TimingDiscipline};

/// Address-stream flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressPattern {
    /// Wrap-around sequential sweep (DMA-like).
    Sequential,
    /// Uniformly random addresses.
    Random,
    /// 90 % of accesses hit a small hot set, 10 % go anywhere.
    Hotspot,
}

/// One memory operation of a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Read the address.
    Read(usize),
    /// Write the value to the address.
    Write(usize, u64),
}

/// A generated access stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryWorkload {
    ops: Vec<MemOp>,
}

impl MemoryWorkload {
    /// Generates `n` operations over `rows` addresses with the given
    /// write fraction and address pattern, from `rng` (deterministic per
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `write_fraction` is outside `[0, 1]`.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        rows: usize,
        write_fraction: f64,
        pattern: AddressPattern,
        rng: &mut R,
    ) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction out of range"
        );
        let hot: Vec<usize> = (0..rows.min(4)).collect();
        let mut seq = 0usize;
        let ops = (0..n)
            .map(|_| {
                let addr = match pattern {
                    AddressPattern::Sequential => {
                        seq = (seq + 1) % rows;
                        seq
                    }
                    AddressPattern::Random => rng.gen_range(0..rows),
                    AddressPattern::Hotspot => {
                        if rng.gen_bool(0.9) {
                            hot[rng.gen_range(0..hot.len())]
                        } else {
                            rng.gen_range(0..rows)
                        }
                    }
                };
                if rng.gen_bool(write_fraction) {
                    MemOp::Write(addr, rng.gen_range(0..=0xFFFF))
                } else {
                    MemOp::Read(addr)
                }
            })
            .collect();
        Self { ops }
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Outcome of replaying a workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadReport {
    /// Operations attempted.
    pub attempted: usize,
    /// Operations whose timing was met and data verified.
    pub correct: usize,
    /// Reads that returned data disagreeing with a shadow model (only
    /// possible for mistimed disciplines).
    pub data_errors: usize,
    /// Total time the access stream occupied.
    pub total_time: Seconds,
    /// Total access energy.
    pub total_energy: Joules,
}

impl WorkloadReport {
    /// Fraction of operations completed correctly.
    pub fn yield_fraction(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.correct as f64 / self.attempted as f64
        }
    }
}

/// Replays `workload` against `sram` under a supply waveform, checking
/// every read against a software shadow array (ground truth). Accesses
/// are issued back to back: each starts when the previous finished.
///
/// The `discipline` only affects constant-voltage accesses; pass the
/// supply as [`Waveform::constant`] for the bundled/replica disciplines
/// (the SI engine handles arbitrary waveforms via `*_under`).
pub fn replay(
    sram: &mut Sram,
    workload: &MemoryWorkload,
    supply: &Waveform,
    discipline: TimingDiscipline,
) -> WorkloadReport {
    let mut shadow = vec![None::<u64>; sram.config().rows];
    let mut report = WorkloadReport::default();
    let mut t = Seconds(0.0);
    let res = Seconds(100e-9);
    let horizon = Seconds(10.0);
    let constant = supply.as_constant().map(Volts);

    for &op in workload.ops() {
        report.attempted += 1;
        let outcome = match (op, constant) {
            (MemOp::Read(a), Some(v)) => sram.read_at(v, a, discipline),
            (MemOp::Write(a, w), Some(v)) => sram.write_at(v, a, w, discipline),
            (MemOp::Read(a), None) => sram.read_under(supply, t, a, res, horizon),
            (MemOp::Write(a, w), None) => sram.write_under(supply, t, a, w, res, horizon),
        };
        if outcome.latency.0.is_finite() {
            t = Seconds(t.0 + outcome.latency.0);
            report.total_time = t;
        }
        report.total_energy += outcome.energy;
        match op {
            MemOp::Write(a, w) => {
                if outcome.correct {
                    shadow[a] = Some(w);
                    report.correct += 1;
                } else {
                    // Storage may be partially corrupted: the shadow no
                    // longer knows this address.
                    shadow[a] = None;
                }
            }
            MemOp::Read(a) => {
                if outcome.correct {
                    match (outcome.data, shadow[a]) {
                        (Some(got), Some(expect)) if got != expect => {
                            report.data_errors += 1;
                        }
                        _ => report.correct += 1,
                    }
                } else if outcome.data.is_some() {
                    report.data_errors += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::SramConfig;
    use emc_prng::StdRng;

    fn workload(pattern: AddressPattern, seed: u64) -> MemoryWorkload {
        MemoryWorkload::generate(200, 64, 0.4, pattern, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let a = workload(AddressPattern::Random, 3);
        let b = workload(AddressPattern::Random, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for op in a.ops() {
            let addr = match op {
                MemOp::Read(a) | MemOp::Write(a, _) => *a,
            };
            assert!(addr < 64);
        }
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let w = workload(AddressPattern::Hotspot, 5);
        let hot = w
            .ops()
            .iter()
            .filter(|op| matches!(op, MemOp::Read(a) | MemOp::Write(a, _) if *a < 4))
            .count();
        assert!(hot > 150, "only {hot}/200 hit the hot set");
    }

    #[test]
    fn sequential_wraps() {
        let w = MemoryWorkload::generate(
            130,
            64,
            0.0,
            AddressPattern::Sequential,
            &mut StdRng::seed_from_u64(1),
        );
        let first = match w.ops()[0] {
            MemOp::Read(a) => a,
            _ => unreachable!("write fraction is 0"),
        };
        assert_eq!(first, 1);
        // Address 1 repeats after a full wrap of 64.
        let again = match w.ops()[64] {
            MemOp::Read(a) => a,
            _ => unreachable!(),
        };
        assert_eq!(again, 1);
    }

    #[test]
    fn si_discipline_yields_100_percent_at_any_voltage() {
        for vdd in [1.0, 0.4, 0.25] {
            let mut sram = Sram::new(SramConfig::paper_1kbit());
            let w = workload(AddressPattern::Random, 7);
            let r = replay(
                &mut sram,
                &w,
                &Waveform::constant(vdd),
                TimingDiscipline::Completion,
            );
            assert_eq!(r.yield_fraction(), 1.0, "yield at {vdd} V");
            assert_eq!(r.data_errors, 0);
            assert!(r.total_energy.0 > 0.0);
            assert!(r.total_time.0 > 0.0);
        }
    }

    #[test]
    fn bundled_discipline_fails_the_same_workload_at_low_voltage() {
        let mut sram = Sram::new(SramConfig::paper_1kbit());
        let w = workload(AddressPattern::Random, 7);
        let r = replay(
            &mut sram,
            &w,
            &Waveform::constant(0.25),
            TimingDiscipline::bundled_nominal(),
        );
        assert!(r.yield_fraction() < 0.1, "yield {}", r.yield_fraction());
    }

    #[test]
    fn replay_under_noisy_supply_is_correct_and_slower() {
        let mut sram = Sram::new(SramConfig::paper_1kbit());
        let w = MemoryWorkload::generate(
            40,
            64,
            0.5,
            AddressPattern::Hotspot,
            &mut StdRng::seed_from_u64(9),
        );
        // 0.5 V mean with a ±0.2 V wobble.
        let supply = Waveform::sine(0.5, 0.2, emc_units::Hertz(50e3), 0.0);
        let noisy = replay(&mut sram, &w, &supply, TimingDiscipline::Completion);
        assert_eq!(noisy.yield_fraction(), 1.0);
        assert_eq!(noisy.data_errors, 0);

        let mut sram2 = Sram::new(SramConfig::paper_1kbit());
        let steady = replay(
            &mut sram2,
            &w,
            &Waveform::constant(0.7),
            TimingDiscipline::Completion,
        );
        assert!(noisy.total_time > steady.total_time);
    }

    #[test]
    fn energy_scales_with_write_fraction() {
        let run = |wf: f64| {
            let mut sram = Sram::new(SramConfig::paper_1kbit());
            let w = MemoryWorkload::generate(
                150,
                64,
                wf,
                AddressPattern::Random,
                &mut StdRng::seed_from_u64(11),
            );
            replay(
                &mut sram,
                &w,
                &Waveform::constant(0.5),
                TimingDiscipline::Completion,
            )
            .total_energy
        };
        assert!(run(0.9) > run(0.1), "writes cost more than reads");
    }
}
