//! Specification conformance: simulated circuits checked against their
//! STG contracts, and supply gating exercised end to end.

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::{GateKind, Netlist};
use energy_modulated::petri::{Polarity, Stg};
use energy_modulated::selftimed::DualRailPipeline;
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

/// Converts a trace over two nets into an STG edge word.
fn edge_word(
    sim: &Simulator,
    pairs: &[(
        energy_modulated::netlist::NetId,
        energy_modulated::petri::SignalId,
    )],
) -> Vec<(energy_modulated::petri::SignalId, Polarity)> {
    sim.trace()
        .entries()
        .iter()
        .filter_map(|e| {
            pairs.iter().find(|(net, _)| *net == e.net).map(|(_, sig)| {
                (
                    *sig,
                    if e.value {
                        Polarity::Plus
                    } else {
                        Polarity::Minus
                    },
                )
            })
        })
        .collect()
}

/// A simulated C-element's behaviour is a word of the C-element STG.
#[test]
fn c_element_circuit_conforms_to_its_stg() {
    let (spec, a_sig, b_sig, c_sig) = Stg::c_element();
    assert_eq!(spec.check(1000), Ok(()));

    let mut nl = Netlist::new();
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.gate(GateKind::CElement, &[a, b], "c");
    nl.mark_output(c);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.7)));
    sim.assign_all(d);
    sim.watch(a);
    sim.watch(b);
    sim.watch(c);
    sim.start();
    // Two full cycles with different input orders.
    for (t, net, v) in [
        (1.0e-9, a, true),
        (2.0e-9, b, true),
        (20.0e-9, a, false),
        (21.0e-9, b, false),
        (40.0e-9, b, true),
        (41.0e-9, a, true),
        (60.0e-9, b, false),
        (61.0e-9, a, false),
    ] {
        sim.schedule_input(net, Seconds(t), v);
    }
    sim.run_until(Seconds(100e-9));
    let word = edge_word(&sim, &[(a, a_sig), (b, b_sig), (c, c_sig)]);
    assert!(word.len() >= 10, "trace too short: {word:?}");
    assert!(
        spec.accepts(&word),
        "simulated C-element trace not in its STG language: {word:?}"
    );
}

/// The WCHB pipeline's sender interface conforms to the four-phase
/// handshake STG.
#[test]
fn wchb_sender_conforms_to_handshake_stg() {
    let (spec, req_sig, ack_sig) = Stg::four_phase_handshake();
    let mut nl = Netlist::new();
    let p = DualRailPipeline::build(&mut nl, 2, "p");
    let req = p.inputs()[0].t;
    let ack = p.sender_ack();
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.8)));
    sim.assign_all(d);
    sim.watch(req);
    sim.watch(ack);
    sim.start();
    sim.run_to_quiescence(10_000);
    let out = p.transfer(&mut sim, &[1, 1, 1], Seconds(1e-3));
    assert!(out.completed);
    let word = edge_word(&sim, &[(req, req_sig), (ack, ack_sig)]);
    assert_eq!(word.len(), 12, "three full cycles expected: {word:?}");
    assert!(spec.accepts(&word), "handshake word rejected: {word:?}");
}

/// Supply gating by waveform product: while the enable schedule is 0 the
/// circuit is frozen, and it resumes seamlessly after wake-up.
#[test]
fn gated_supply_freezes_and_resumes() {
    use energy_modulated::selftimed::{SelfTimedOscillator, ToggleRippleCounter};
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    // 0.8 V rail gated off during [2 µs, 6 µs).
    let enable = Waveform::steps([
        (Seconds(0.0), 1.0),
        (Seconds(2e-6), 0.0),
        (Seconds(6e-6), 1.0),
    ]);
    let rail = Waveform::constant(0.8).times(enable);
    let d = sim.add_domain(
        "gated",
        SupplyKind::ideal_with_resolution(rail, Seconds(50e-9)),
    );
    sim.assign_all(d);
    cnt.watch(&mut sim);
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(2.5e-6));
    let at_gate_off = sim.trace().len();
    sim.run_until(Seconds(5.5e-6));
    let during_sleep = sim.trace().len() - at_gate_off;
    assert!(
        during_sleep <= 2,
        "circuit should freeze while gated, saw {during_sleep} transitions"
    );
    sim.run_until(Seconds(8e-6));
    let after_wake = sim.trace().len() - at_gate_off - during_sleep;
    assert!(after_wake > 50, "circuit should resume, saw {after_wake}");
    // Counting integrity across the gap: every stage still divides its
    // predecessor's rate by two. (At this supply the pulse period is
    // shorter than a full 8-bit carry ripple, so the *register* is
    // transiently inconsistent by design — per-stage division is the
    // invariant that must survive power gating.)
    for w in cnt.toggles().windows(2) {
        let hi = sim.transition_count(w[0]) as f64;
        let lo = sim.transition_count(w[1]) as f64;
        if lo >= 8.0 {
            let ratio = hi / lo;
            assert!(
                (1.7..=2.3).contains(&ratio),
                "division broke across the gate: {hi}/{lo}"
            );
        }
    }
    assert!(sim.hazards().is_empty());
}
