//! Export tooling over real composed circuits: structural Verilog,
//! Graphviz dot and VCD from one DIMS adder simulation.

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::{to_dot, to_verilog, Netlist};
use energy_modulated::selftimed::DualRailAdder;
use energy_modulated::sim::{to_vcd, Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

#[test]
fn adder_exports_verilog_dot_and_vcd() {
    let mut nl = Netlist::new();
    let adder = DualRailAdder::build(&mut nl, 4, "add");

    // Verilog: every C-element minterm cell appears, module is closed.
    let verilog = to_verilog(&nl, "dims_adder4");
    assert!(verilog.starts_with("module dims_adder4 ("));
    assert!(
        verilog.matches("EMC_CELEM").count() > 16,
        "minterm cells missing"
    );
    assert!(verilog.contains("endmodule"));
    // Every non-source gate appears exactly once as an instance.
    let instances = verilog.matches("\n  ").count();
    assert!(instances >= nl.gate_count() - 16, "instances {instances}");

    // Dot: one node per gate.
    let dot = to_dot(&nl);
    assert_eq!(dot.matches("label=").count(), nl.gate_count());

    // Simulate one addition with the completion net watched, then dump
    // a VCD of it.
    let done = adder.done();
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.8)));
    sim.assign_all(d);
    sim.watch(done);
    sim.start();
    sim.run_to_quiescence(100_000);
    let deadline = Seconds(sim.now().0 + 1e-3);
    let sum = adder.add(&mut sim, 6, 7, deadline).expect("completes");
    assert_eq!(sum, 13);
    let vcd = to_vcd(sim.trace(), sim.netlist(), &[done], &[false], 1000);
    assert!(vcd.contains("$var wire 1 ! add.cd"));
    // Completion rose and fell at least once: two value changes.
    let changes = vcd.matches("\n1!").count() + vcd.matches("\n0!").count();
    assert!(changes >= 2, "completion edges missing:\n{vcd}");
}

#[test]
fn exports_are_deterministic() {
    let build = || {
        let mut nl = Netlist::new();
        let _ = DualRailAdder::build(&mut nl, 3, "a");
        (to_verilog(&nl, "m"), to_dot(&nl))
    };
    assert_eq!(build(), build());
}
