//! Golden-trace regression for the paper's Fig. 4: the 2-bit self-timed
//! counter under the AC supply 200 mV ± 100 mV at 1 MHz. The full
//! watched trace (oscillator output + both counter bits) is pinned by
//! its FNV-1a digest, so *any* behavioural drift — an event reordered, a
//! delay model nudged, a pause skipped in a supply trough — fails this
//! test even if the final count still looks right.
//!
//! If a deliberate model change moves the digest, re-derive the constant
//! with the reproduction command in the assertion message and update it
//! alongside the change that justified it.

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::Netlist;
use energy_modulated::power::chain::ac_supply;
use energy_modulated::selftimed::{SelfTimedOscillator, ToggleRippleCounter};
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Hertz, Seconds, Volts};

/// Digest of the Fig. 4 trace over the first 10 supply periods.
const FIG04_TRACE_DIGEST: u64 = 0xb3b7_d73d_66fa_a96b;

fn fig04_sim(periods: f64) -> Simulator {
    let freq = Hertz(1e6);
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 2, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let supply = ac_supply(Volts(0.2), Volts(0.1), freq);
    let d = sim.add_domain(
        "ac",
        SupplyKind::ideal_with_resolution(supply, Seconds(freq.period().0 / 128.0)),
    );
    sim.assign_all(d);
    counter.watch(&mut sim);
    sim.watch(osc.output());
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(periods * freq.period().0));
    sim
}

#[test]
fn fig04_dual_rail_counter_trace_is_pinned() {
    let sim = fig04_sim(10.0);
    let digest = sim.trace().digest();
    assert!(
        !sim.trace().is_empty(),
        "the counter must actually run under the AC supply"
    );
    assert_eq!(
        digest, FIG04_TRACE_DIGEST,
        "Fig. 4 golden trace moved: got {digest:#018x}. If a model change \
         makes this intentional, rerun `cargo test --test golden_trace` \
         and update FIG04_TRACE_DIGEST."
    );
}

#[test]
fn fig04_trace_digest_is_reproducible() {
    // The digest is a pure function of the run — two fresh simulators
    // agree. (Guards the golden constant against flakiness suspicions.)
    assert_eq!(
        fig04_sim(5.0).trace().digest(),
        fig04_sim(5.0).trace().digest()
    );
}
