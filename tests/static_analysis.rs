//! Soundness and equivalence gates for the static-analysis engine
//! (`emc-analyze`) and the reductions it powers in the verifier.
//!
//! Three properties are pinned here, over the built-in suite and the
//! generator's pinned corpus seeds:
//!
//! 1. **Independence soundness** — the static may-interfere relation is
//!    conservative: every dynamically observed interference between two
//!    gate firings (one disables the other, or the diamond fails to
//!    close) involves a pair the matrix already marks.
//! 2. **Orbit soundness** — every validated symmetry orbit commutes
//!    with the transition relation on the explored graph
//!    ([`emc_verify::orbit_commutation_check`]).
//! 3. **Reduction equivalence** — verification under partial-order +
//!    symmetry reduction reaches the same verdict (rules, cleanliness,
//!    exhaustiveness) as the unreduced explorer, never explores more
//!    states, and explores at least 2x fewer on the pipelined-array
//!    workload whose rows are independent and symmetric.

use std::collections::{HashSet, VecDeque};

use emc_analyze::{discover_rail_pairs, may_interfere_matrix};
use emc_gen::{GenBounds, Plan};
use emc_verify::builtin::builtin_suite;
use emc_verify::{orbit_commutation_check, Circuit, Explorer, Verifier};

/// The exemplar corpus seeds pinned in `crates/gen/tests/fixtures/`
/// (one per generator family).
const CORPUS_SEEDS: [u64; 6] = [
    0x057e_cade_6a7c_2132, // micropipeline
    0xbe02_0c31_9a78_d0d8, // dims-adder
    0x83ac_adce_c37d_6309, // block-graph
    0x1042_c69e_32ed_66bb, // wchb-datapath
    0x4206_68b9_c7e0_f0f1, // pipelined-array
    0x29de_4a7b_b761_e8a6, // completion-tree
];

fn corpus_circuits() -> Vec<Circuit<'static>> {
    CORPUS_SEEDS
        .iter()
        .map(|&seed| {
            Plan::from_seed(seed, &GenBounds::smoke())
                .build()
                .verify_circuit()
        })
        .collect()
}

/// Walks (a bounded prefix of) the reachable graph of `c` and checks
/// that every statically-independent pair of enabled gate transitions
/// actually commutes: neither disables the other, and both orders land
/// in the same state. A violation would make persistent-set reduction
/// unsound.
fn assert_observed_interference_is_static(c: &Circuit<'_>, state_budget: usize) -> usize {
    let pairs = discover_rail_pairs(&c.netlist);
    let inter = may_interfere_matrix(&c.netlist, &pairs);
    let ex = Explorer::new(&c.netlist, &c.env, &c.initial, state_budget * 4);
    let mut seen: HashSet<emc_verify::State> = HashSet::new();
    let mut queue = VecDeque::new();
    let s0 = ex.initial_state();
    seen.insert(s0.clone());
    queue.push_back(s0);
    let mut checked_pairs = 0usize;
    while let Some(s) = queue.pop_front() {
        let internal = ex.internal_enabled(&s);
        let env = ex.env_enabled(&s, internal.is_empty());
        for (i, t1) in internal.iter().enumerate() {
            let g1 = t1.gate.expect("internal transition carries a gate");
            let (s1, _) = ex.apply(&s, t1);
            for t2 in internal.iter().skip(i + 1) {
                let g2 = t2.gate.expect("internal transition carries a gate");
                if inter.may_interfere(g1, g2) {
                    // Statically dependent: nothing to prove.
                    continue;
                }
                checked_pairs += 1;
                // Independent by the matrix: t2 must survive t1
                // unchanged and the diamond must close.
                let after1 = ex.internal_enabled(&s1);
                let t2b = after1
                    .iter()
                    .find(|t| t.gate == t2.gate && t.net == t2.net && t.value == t2.value)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: gates {g1:?}/{g2:?} marked independent but firing \
                             the first disabled the second",
                            c.name
                        )
                    });
                let (s12, _) = ex.apply(&s1, t2b);
                let (s2, _) = ex.apply(&s, t2);
                let after2 = ex.internal_enabled(&s2);
                let t1b = after2
                    .iter()
                    .find(|t| t.gate == t1.gate && t.net == t1.net && t.value == t1.value)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: gates {g2:?}/{g1:?} marked independent but firing \
                             the first disabled the second",
                            c.name
                        )
                    });
                let (s21, _) = ex.apply(&s2, t1b);
                assert_eq!(
                    s12, s21,
                    "{}: statically independent gates {g1:?}/{g2:?} do not commute",
                    c.name
                );
            }
        }
        if seen.len() >= state_budget {
            continue; // drain the queue without expanding further
        }
        for t in internal.iter().chain(env.iter()) {
            let (n, _) = ex.apply(&s, t);
            if !seen.contains(&n) {
                seen.insert(n.clone());
                queue.push_back(n);
            }
        }
    }
    checked_pairs
}

#[test]
fn static_independence_is_sound_on_builtins() {
    // The tight built-in handshakes can legitimately have zero
    // statically independent pairs (every firing interferes); the
    // property is vacuous there but must still hold state-by-state.
    for c in builtin_suite(true) {
        assert_observed_interference_is_static(&c, 1_500);
    }
}

#[test]
fn static_independence_is_sound_on_generated_corpus() {
    let mut checked = 0;
    for c in corpus_circuits() {
        checked += assert_observed_interference_is_static(&c, 1_000);
    }
    // The pipelined array's rows are disjoint, so the corpus walk must
    // exercise genuinely independent pairs.
    assert!(
        checked > 0,
        "corpus walk found no independent pairs to check"
    );
}

#[test]
fn orbits_commute_on_builtins_and_corpus() {
    for c in builtin_suite(true).iter().chain(corpus_circuits().iter()) {
        match orbit_commutation_check(c, 20_000) {
            Ok(_) => {}
            Err(e) => panic!("{}: orbit commutation failed: {e}", c.name),
        }
    }
}

/// Full-vs-reduced verdict equivalence on one circuit; returns the two
/// state counts.
fn verdicts_match(c: &Circuit<'static>) -> (usize, usize) {
    let full = Verifier::new().verify(c);
    let reduced = Verifier::new().with_reduction(true).verify(c);
    assert_eq!(
        full.distinct_rules(),
        reduced.distinct_rules(),
        "{}: rule set diverged under reduction",
        c.name
    );
    assert_eq!(
        full.is_clean(),
        reduced.is_clean(),
        "{}: verdict diverged",
        c.name
    );
    assert_eq!(
        full.exhaustive, reduced.exhaustive,
        "{}: exhaustiveness diverged",
        c.name
    );
    assert!(
        reduced.states <= full.states,
        "{}: reduction grew the state count ({} > {})",
        c.name,
        reduced.states,
        full.states
    );
    (full.states, reduced.states)
}

#[test]
fn reduced_verification_is_equivalent_on_builtins() {
    for c in builtin_suite(true) {
        verdicts_match(&c);
    }
}

#[test]
fn reduced_verification_is_equivalent_on_generated_corpus() {
    for c in corpus_circuits() {
        verdicts_match(&c);
    }
}

#[test]
fn pipelined_array_reduces_at_least_two_fold() {
    // Two independent, mutually symmetric rows: both the persistent-set
    // and the orbit-quotient machinery must bite here. This is the
    // PR's headline acceptance criterion (also recorded by emc-perf in
    // BENCH_PR7.json).
    let c = emc_gen::pipelined_array(2, 2, "sa-array").verify_circuit();
    assert!(
        c.footprint.is_some(),
        "pipelined array declares a footprint"
    );
    let (full, reduced) = verdicts_match(&c);
    assert!(
        reduced * 2 <= full,
        "expected >=2x state reduction on the pipelined array, got {full} -> {reduced}"
    );
}
