//! Dependability under stuck-at faults — the §I "interplay between
//! energy, performance and dependability" made concrete.
//!
//! The celebrated self-checking property of speed-independent circuits:
//! a stuck-at fault on an internal gate makes the handshake **deadlock**
//! (the completion never announces), so the environment *knows*
//! something is wrong. The bundled-data design's matched delay fires
//! regardless, delivering **silently corrupted data**.

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::Netlist;
use energy_modulated::selftimed::{BundledPipeline, DualRailAdder, DualRailPipeline};
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

fn sim_for(nl: Netlist, vdd: f64) -> Simulator {
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
    sim.assign_all(d);
    sim.start();
    sim.run_to_quiescence(100_000);
    sim
}

/// A stuck C-element in a WCHB pipeline: the transfer stalls, and
/// nothing wrong ever comes out.
#[test]
fn si_pipeline_deadlocks_but_never_lies() {
    let mut corrupted = 0;
    let mut stalled = 0;
    // Try sticking several different gates.
    for victim in [2usize, 5, 8, 11] {
        let mut nl = Netlist::new();
        let p = DualRailPipeline::build_wide(&mut nl, 3, 2, "p");
        let mut sim = sim_for(nl, 0.8);
        let gate = sim.netlist().gate_id(victim);
        if sim.netlist().gate_ref(gate).kind().is_source() {
            continue;
        }
        sim.inject_stuck_at(gate, false);
        let words = [2, 1, 3, 2];
        let out = p.transfer(&mut sim, &words, Seconds(50e-6));
        if !out.completed {
            stalled += 1;
        }
        for (got, want) in out.received.iter().zip(&words) {
            if got != want {
                corrupted += 1;
            }
        }
    }
    assert_eq!(corrupted, 0, "an SI pipeline must never deliver wrong data");
    assert!(stalled >= 2, "stuck-at faults should stall transfers");
}

/// The same class of fault in a bundled pipeline sails through the
/// handshake and delivers wrong words.
#[test]
fn bundled_pipeline_corrupts_silently() {
    let mut nl = Netlist::new();
    let p = BundledPipeline::build_wide(&mut nl, 2, 4, 3, 2.0, "b");
    // Stick a data-path inverter.
    let victim = p.stages()[0].logic_gates[1];
    let mut sim = sim_for(nl, 1.0);
    sim.inject_stuck_at(victim, true);
    let words = [0xF, 0x0, 0xA, 0x5];
    let out = p.transfer(&mut sim, &words, Seconds(50e-6));
    assert!(
        out.completed,
        "the matched delay line knows nothing of the fault"
    );
    assert_ne!(
        out.received,
        words.to_vec(),
        "bundled data must corrupt silently under this fault"
    );
}

/// The DIMS adder with a stuck minterm: additions needing that minterm
/// hang at the completion detector; the rest still finish correctly.
#[test]
fn dims_adder_fault_containment() {
    let mut nl = Netlist::new();
    let adder = DualRailAdder::build(&mut nl, 4, "add");
    let mut sim = sim_for(nl, 0.8);
    // Stick the t-rail OR of the LSB sum low: sums with odd results in
    // bit 0 can never complete.
    let victim = sim
        .netlist()
        .iter_nets()
        .find(|n| sim.netlist().net_name(*n) == "add.fa0.sum.t")
        .and_then(|n| sim.netlist().driver_of(n))
        .expect("sum rail gate exists");
    sim.inject_stuck_at(victim, false);

    // 2 + 2 = 4: LSB sum is 0 — the stuck t-rail is not needed.
    let deadline = Seconds(sim.now().0 + 1e-3);
    let ok = adder.add(&mut sim, 2, 2, deadline);
    assert_eq!(ok, Some(4), "fault-free paths still complete correctly");

    // 2 + 1 = 3: LSB sum is 1 — needs the stuck rail: must hang, not lie.
    let deadline = Seconds(sim.now().0 + 1e-3);
    let hung = adder.add(&mut sim, 2, 1, deadline);
    assert_eq!(
        hung, None,
        "the fault must surface as a stall, not a wrong sum"
    );
}

/// Stuck-at on an oscillator freezes counting without corrupting the
/// already-accumulated count.
#[test]
fn counter_freezes_cleanly() {
    use energy_modulated::selftimed::{SelfTimedOscillator, ToggleRippleCounter};
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let cnt = ToggleRippleCounter::build(&mut nl, 8, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.6)));
    sim.assign_all(d);
    cnt.watch(&mut sim);
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(1e-6));
    let osc_gate = sim.netlist().driver_of(osc.output()).unwrap();
    sim.inject_stuck_at(osc_gate, false);
    sim.run_to_quiescence(100_000);
    let frozen = cnt.read(&sim);
    sim.run_until(Seconds(sim.now().0 + 1e-6));
    assert_eq!(cnt.read(&sim), frozen, "count must freeze, not drift");
    assert_eq!(sim.stuck_at(osc_gate), Some(false));
}
