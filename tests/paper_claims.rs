//! The README's "what reproduces" table as executable assertions — one
//! test per headline claim, so the claims can never drift from the code.

use energy_modulated::core::qos::{measure_pipeline_qos, DesignStyle};
use energy_modulated::device::{DeviceModel, SramLogicCalibration};
use energy_modulated::sensors::{ChargeToDigitalConverter, ReferenceFreeSensor};
use energy_modulated::sram::energy::Op;
use energy_modulated::sram::{Sram, SramConfig, TimingDiscipline};
use energy_modulated::units::{Farads, Seconds, Volts, Waveform};

/// Fig. 5: 50 inverter delays at 1 V, 158 at 190 mV, monotone between.
#[test]
fn claim_fig5_anchors() {
    let cal = SramLogicCalibration::solve(DeviceModel::umc90());
    assert!((cal.delay_ratio(Volts(1.0)) - 50.0).abs() < 0.5);
    assert!((cal.delay_ratio(Volts(0.19)) - 158.0).abs() < 2.0);
    let series = cal.mismatch_series(Volts(0.19), Volts(1.0), 30);
    for w in series.windows(2) {
        assert!(w[0].1 > w[1].1, "mismatch curve must fall with Vdd");
    }
}

/// §III-A: 5.8 pJ per 16-bit write at 1 V, 1.9 pJ at 0.4 V, MEP near
/// 0.4 V.
#[test]
fn claim_sram_energy_numbers() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    let e1 = sram
        .write_at(Volts(1.0), 0, 1, TimingDiscipline::Completion)
        .energy;
    let e04 = sram
        .write_at(Volts(0.4), 0, 2, TimingDiscipline::Completion)
        .energy;
    assert!((e1.0 * 1e12 - 5.8).abs() < 0.01, "E(1V) = {e1}");
    assert!((e04.0 * 1e12 - 1.9).abs() < 0.01, "E(0.4V) = {e04}");
    let (mep, _) = sram.energy_model().minimum_energy_point(
        sram.timing(),
        Op::Write,
        Volts(0.15),
        Volts(1.0),
        400,
    );
    assert!(
        (0.35..=0.5).contains(&mep.0),
        "minimum energy point {mep} (paper: 0.4 V)"
    );
}

/// Fig. 7: a write under depleted supply is hundreds of times slower
/// than at nominal, and both are correct.
#[test]
fn claim_fig7_latency_ratio() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.25),
        (Seconds(30e-6), 0.25),
        (Seconds(32e-6), 1.0),
    ]);
    let res = Seconds(50e-9);
    let horizon = Seconds(1.0);
    let slow = sram.write_under(&supply, Seconds(0.0), 0, 0xAAAA, res, horizon);
    let fast = sram.write_under(&supply, Seconds(35e-6), 1, 0x5555, res, horizon);
    assert!(slow.correct && fast.correct);
    let ratio = slow.latency.0 / fast.latency.0;
    assert!(ratio > 300.0, "ratio {ratio}");
    assert_eq!(sram.peek(0), 0xAAAA);
    assert_eq!(sram.peek(1), 0x5555);
}

/// Fig. 12 + §III-C: ≤ 10 mV worst-case accuracy over 0.2 – 1 V.
#[test]
fn claim_reference_free_accuracy() {
    let sensor = ReferenceFreeSensor::new(8);
    let err = sensor.worst_case_error();
    assert!(err.0 <= 0.010, "worst error {err}");
}

/// Fig. 11: the charge-to-code curve is monotone and deterministic.
#[test]
fn claim_charge_to_code_monotone() {
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    let a = adc.code_curve(Volts(0.4), Volts(1.0), 5);
    let b = adc.code_curve(Volts(0.4), Volts(1.0), 5);
    assert_eq!(a, b, "conversion must be deterministic");
    for w in a.windows(2) {
        assert!(w[1].1.code > w[0].1.code, "code must grow with Vin");
    }
}

/// Fig. 2: bundled more efficient at nominal; only dual-rail correct in
/// deep sub-threshold.
#[test]
fn claim_design_crossover() {
    let d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(1.0), 9);
    let d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(1.0), 9);
    assert!(d2.qos_per_watt() > 1.5 * d1.qos_per_watt());
    let sub = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(0.15), 9);
    assert_eq!(sub.correct_fraction, 1.0);
    assert!(sub.qos() > 0.0);
}

/// §II-B: the bundled SRAM discipline silently fails below its margin
/// voltage while completion detection keeps working to ~0.2 V.
#[test]
fn claim_bundled_fails_where_completion_survives() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    sram.write_at(Volts(1.0), 3, 0x0FF0, TimingDiscipline::Completion);
    let si = sram.read_at(Volts(0.25), 3, TimingDiscipline::Completion);
    let bundled = sram.read_at(Volts(0.25), 3, TimingDiscipline::bundled_nominal());
    assert!(si.correct && si.data == Some(0x0FF0));
    assert!(!bundled.correct && bundled.data.is_none());
}
