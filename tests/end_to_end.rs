//! Cross-crate integration tests: the paper's claims exercised through
//! the public facade, spanning device model → simulator → circuits →
//! sensors → system control.

use energy_modulated::core::qos::{measure_pipeline_qos, DesignStyle};
use energy_modulated::device::{DeviceModel, SramLogicCalibration};
use energy_modulated::netlist::Netlist;
use energy_modulated::selftimed::{DualRailPipeline, SelfTimedOscillator, ToggleRippleCounter};
use energy_modulated::sensors::{ChargeToDigitalConverter, ReferenceFreeSensor};
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::sram::{Sram, SramConfig, TimingDiscipline};
use energy_modulated::units::{Farads, Hertz, Seconds, Volts, Waveform};

/// The headline chain: the same device model that anchors Fig. 5 also
/// powers the reference-free sensor's accuracy claim — the mismatch *is*
/// the sensor.
#[test]
fn fig5_mismatch_feeds_fig12_sensor() {
    let cal = SramLogicCalibration::solve(DeviceModel::umc90());
    assert!((cal.delay_ratio(Volts(1.0)) - 50.0).abs() < 0.5);
    assert!((cal.delay_ratio(Volts(0.19)) - 158.0).abs() < 2.0);

    let sensor = ReferenceFreeSensor::new(8);
    assert!(sensor.worst_case_error().0 <= 0.010);
    // The unity-gain code at 1 V is exactly the Fig. 5 nominal anchor.
    let unity = ReferenceFreeSensor::new(1);
    assert_eq!(unity.measure(Volts(1.0)), 50);
}

/// A full energy-modulated pipeline: charge a capacitor, let the counter
/// convert it, and verify the code maps back to the voltage through the
/// calibration — an ADC built from nothing but self-timed logic.
#[test]
fn charge_quantum_round_trips_to_voltage() {
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    let decode = adc.calibrate(Volts(0.4), Volts(1.0), 25);
    for &v in &[0.45, 0.65, 0.85] {
        let code = adc.convert(Volts(v)).code;
        let est = decode(code);
        assert!(
            (est.0 - v).abs() < 0.03,
            "ADC round trip at {v} V gave {est}"
        );
    }
}

/// SRAM contents survive a brown-out: writes stall while the rail is
/// dead and complete when it recovers, with data intact.
#[test]
fn sram_survives_brownout_cycle() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    // Healthy → dead → healthy supply.
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.8),
        (Seconds(5e-6), 0.8),
        (Seconds(5.5e-6), 0.05),
        (Seconds(20e-6), 0.05),
        (Seconds(21e-6), 0.8),
    ]);
    let res = Seconds(50e-9);
    let horizon = Seconds(1.0);
    // Write while healthy.
    let w1 = sram.write_under(&supply, Seconds(0.0), 0, 0x1234, res, horizon);
    assert!(w1.correct);
    // A write launched into the brown-out completes only after recovery.
    let w2 = sram.write_under(&supply, Seconds(6e-6), 1, 0x5678, res, horizon);
    assert!(w2.correct);
    assert!(
        w2.latency.0 > 14e-6,
        "write must have waited out the brown-out, latency {}",
        w2.latency
    );
    assert_eq!(sram.peek(0), 0x1234);
    assert_eq!(sram.peek(1), 0x5678);
}

/// The dual-rail pipeline and the toggle counter share one AC-powered
/// domain and both make progress without hazards — self-timed
/// subsystems compose.
#[test]
fn composed_subsystems_share_an_ac_rail() {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 3, osc.output(), "cnt");
    let pipe = DualRailPipeline::build_wide(&mut nl, 2, 2, "pipe");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let period = 1e-6;
    let d = sim.add_domain(
        "ac",
        SupplyKind::ideal_with_resolution(
            Waveform::sine(0.25, 0.1, Hertz(1.0 / period), 0.0).clamped(0.0, 2.0),
            Seconds(period / 128.0),
        ),
    );
    sim.assign_all(d);
    counter.watch(&mut sim);
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(Seconds(4.0 * period));

    let words = [2, 1, 3];
    let out = pipe.transfer(&mut sim, &words, Seconds(5e-3));
    assert!(out.completed, "pipeline starved: {out:?}");
    assert_eq!(out.received, words.to_vec());
    assert!(counter.read(&sim) > 0 || sim.transition_count(counter.toggles()[0]) > 0);
    assert!(sim.hazards().is_empty());
}

/// The crossover of Fig. 2, end to end: at nominal supply the bundled
/// style is the more efficient; in deep sub-threshold only the
/// speed-independent style still delivers.
#[test]
fn design_style_crossover() {
    let nominal_d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(1.0), 3);
    let nominal_d2 = measure_pipeline_qos(DesignStyle::BundledData, Volts(1.0), 3);
    assert!(nominal_d2.qos_per_watt() > nominal_d1.qos_per_watt());

    let sub_d1 = measure_pipeline_qos(DesignStyle::SpeedIndependent, Volts(0.16), 3);
    assert_eq!(sub_d1.correct_fraction, 1.0);
    assert!(sub_d1.qos() > 0.0);
}

/// Energy bookkeeping is conserved across the facade: what the
/// converter's capacitor loses equals what the simulator accounted for
/// (within the rising-edge-only accounting convention).
#[test]
fn energy_conservation_across_stack() {
    let c = Farads(3e-12);
    let adc = ChargeToDigitalConverter::new(c, 12);
    let r = adc.convert(Volts(0.9));
    let lost = c.stored_energy(Volts(0.9)).0 - c.stored_energy(r.v_residual).0;
    assert!(r.energy.0 > 0.0);
    assert!(
        r.energy.0 < 2.5 * lost && r.energy.0 > 0.4 * lost,
        "accounted {} vs stored loss {lost}",
        r.energy
    );
    // And the conversion produced real work.
    assert!(r.code > 100);
}

/// Determinism across the whole stack: identical runs give identical
/// results (the reproducibility claim of DESIGN.md §4).
#[test]
fn full_stack_determinism() {
    let run = || {
        let adc = ChargeToDigitalConverter::new(Farads(2e-12), 10);
        let a = adc.convert(Volts(0.7));
        let q = measure_pipeline_qos(DesignStyle::BundledData, Volts(0.3), 42);
        (a, q)
    };
    assert_eq!(run(), run());
}

/// The three SRAM timing disciplines agree at nominal supply and
/// disagree exactly where the paper says they must.
#[test]
fn discipline_agreement_matrix() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());
    sram.write_at(Volts(1.0), 7, 0xCAFE, TimingDiscipline::Completion);
    for disc in [
        TimingDiscipline::Completion,
        TimingDiscipline::bundled_nominal(),
        TimingDiscipline::replica_default(),
    ] {
        let r = sram.read_at(Volts(1.0), 7, disc);
        assert!(r.correct, "{disc:?} must be correct at 1 V");
        assert_eq!(r.data, Some(0xCAFE));
    }
    // At 0.25 V only the genuine completion discipline survives.
    let si = sram.read_at(Volts(0.25), 7, TimingDiscipline::Completion);
    let bundled = sram.read_at(Volts(0.25), 7, TimingDiscipline::bundled_nominal());
    assert!(si.correct);
    assert!(!bundled.correct);
}
