//! The campaign engine's hard requirement, pinned: the same campaign
//! seed produces **byte-identical** aggregated reports — run stats,
//! energies, hazard counts, per-run trace digests, figure rows — at 1,
//! 2 and 8 worker threads, and any single run can be re-derived in
//! isolation from `(campaign seed, run index)`.

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::{GateKind, Netlist};
use energy_modulated::prng::{Rng, StdRng};
use energy_modulated::sim::campaign::{
    run_campaign, CampaignConfig, CampaignReport, RunContext, RunReport,
};
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

const CAMPAIGN_SEED: u64 = 0xdead_beef_cafe;

/// One campaign run: a ring oscillator at the job's Vdd, perturbed by a
/// seed-derived burst of enable toggles — so the run genuinely consumes
/// its derived seed and any cross-thread seed mixup would change the
/// trace.
fn worker(vdd: &f64, ctx: &RunContext) -> RunReport {
    let mut nl = Netlist::new();
    let en = nl.input("en");
    let g1 = nl.gate(GateKind::Nand, &[en, en], "g1");
    let g2 = nl.gate(GateKind::Inv, &[g1], "g2");
    let g3 = nl.gate(GateKind::Inv, &[g2], "g3");
    nl.connect_feedback(g1, g3);
    nl.mark_output(g3);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(*vdd)));
    sim.assign_all(d);
    sim.set_initial(g1, true);
    sim.set_initial(g3, true);
    sim.watch(g3);
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut t = 0.0;
    let mut level = true;
    for _ in 0..8 {
        sim.schedule_input(en, Seconds(t), level);
        t += rng.gen_range(1e-9..10e-9);
        level = !level;
    }
    sim.schedule_input(en, Seconds(t), true);
    sim.start();
    let stats = sim.run_until(Seconds(t + 40e-9));
    RunReport::from_sim(&sim, ctx, stats, vec![*vdd, stats.fired as f64])
}

fn sweep(threads: usize) -> CampaignReport {
    let vdds: Vec<f64> = (0..12).map(|i| 0.4 + 0.05 * i as f64).collect();
    let cfg = CampaignConfig::new(CAMPAIGN_SEED).threads(threads);
    run_campaign(&vdds, &cfg, worker)
}

#[test]
fn thread_count_never_changes_the_report() {
    let serial = sweep(1);
    assert_eq!(serial.threads, 1);
    for threads in [2, 8] {
        let parallel = sweep(threads);
        // Byte-identical aggregation: every run report, field for field…
        assert_eq!(serial.runs, parallel.runs, "{threads} threads diverged");
        // …and the one-number summary of the same fact.
        assert_eq!(serial.digest(), parallel.digest());
    }
}

#[test]
fn per_run_trace_digests_match_across_thread_counts() {
    let a = sweep(2);
    let b = sweep(8);
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.trace_digest, rb.trace_digest, "run {}", ra.index);
        assert_ne!(ra.trace_digest, 0, "runs are traced");
    }
}

#[test]
fn any_run_re_derives_in_isolation() {
    // The debugging contract: (campaign seed, index) is all it takes to
    // reproduce one run without running the campaign.
    let report = sweep(8);
    let cfg = CampaignConfig::new(CAMPAIGN_SEED);
    for index in [0, 5, 11] {
        let ctx = RunContext {
            index,
            seed: cfg.run_seed(index),
        };
        let vdd = 0.4 + 0.05 * index as f64;
        let alone = worker(&vdd, &ctx);
        assert_eq!(alone, report.runs[index]);
    }
}

#[test]
fn different_campaign_seeds_give_different_runs() {
    // The seed must actually reach the runs: otherwise the determinism
    // tests above would pass vacuously.
    let vdds = [0.6f64];
    let a = run_campaign(&vdds, &CampaignConfig::new(1).threads(1), worker);
    let b = run_campaign(&vdds, &CampaignConfig::new(2).threads(1), worker);
    assert_ne!(a.runs[0].trace_digest, b.runs[0].trace_digest);
    assert_ne!(a.digest(), b.digest());
}
