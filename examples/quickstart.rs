//! Quickstart: build a self-timed counter, run it at two supply
//! voltages, then let a quantum of charge do the counting.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::Netlist;
use energy_modulated::selftimed::{SelfTimedOscillator, ToggleRippleCounter};
use energy_modulated::sensors::ChargeToDigitalConverter;
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Farads, Seconds, Volts, Waveform};

fn count_for(vdd: f64, window: Seconds) -> (u64, f64) {
    let mut nl = Netlist::new();
    let osc = SelfTimedOscillator::build(&mut nl, "osc");
    let counter = ToggleRippleCounter::build(&mut nl, 16, osc.output(), "cnt");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let rail = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
    sim.assign_all(rail);
    osc.prime(&mut sim);
    sim.start();
    sim.run_until(window);
    (counter.read(&sim), sim.energy_drawn(rail).0)
}

fn main() {
    println!("== Self-timed counter: computation rate follows Vdd ==");
    let window = Seconds(300e-9);
    for vdd in [1.0, 0.7, 0.5, 0.4, 0.3] {
        let (count, energy) = count_for(vdd, window);
        println!(
            "  Vdd = {vdd:.2} V  ->  count after {:>4.0} ns: {count:>5}   energy {:>8.1} fJ",
            window.0 * 1e9,
            energy * 1e15
        );
    }

    println!();
    println!("== Charge-to-digital conversion: energy quantum -> code ==");
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    for vin in [0.4, 0.6, 0.8, 1.0] {
        let r = adc.convert(Volts(vin));
        println!(
            "  Vin = {vin:.1} V  ->  code {:>4}   {} transitions in {:.2} µs, residual {:.0} mV",
            r.code,
            r.transitions,
            r.duration.0 * 1e6,
            r.v_residual.0 * 1e3
        );
    }
    println!();
    println!("A fixed sampling capacitor turns a voltage (a charge quantum)");
    println!("into a proportional amount of computation - the core idea of");
    println!("energy-modulated computing.");
}
