//! A complete energy-harvesting sensor node: vibration micro-generator,
//! MPPT, storage, DC-DC, the sensing loop of the paper's Fig. 8, and an
//! energy-token task scheduler — the holistic system of Fig. 3.
//!
//! ```sh
//! cargo run --example harvester_node
//! ```

use energy_modulated::core::HolisticExperiment;
use energy_modulated::power::{
    DcDcConverter, PerturbObserve, PowerChain, StorageCap, VibrationHarvester,
};
use energy_modulated::sensors::{ChargeToDigitalConverter, SensorLoop};
use energy_modulated::units::{Farads, Hertz, Seconds, Volts, Watts};

fn main() {
    println!("== 1. Maximum-power-point tracking the vibration harvester ==");
    let harvester = VibrationHarvester::new(Hertz(120.0), Watts(100e-6), 10.0);
    let mut mppt = PerturbObserve::new(80.0, 5.0, (40.0, 250.0));
    for step in 0..120 {
        let tuning = Hertz(mppt.operating_point());
        let p = harvester.power(Seconds(0.0), tuning);
        if step % 30 == 0 {
            println!(
                "  step {step:>3}: tuned to {:>6.1} Hz, extracting {:>5.1} µW",
                tuning.0,
                p.0 * 1e6
            );
        }
        mppt.observe(p);
    }
    let tuned = Hertz(mppt.operating_point());
    println!("  converged near the 120 Hz resonance: {:.1} Hz\n", tuned.0);

    println!("== 2. The sensing loop steers the DC-DC output (Fig. 8) ==");
    let chain = PowerChain::new(
        harvester.into_source(tuned),
        StorageCap::new(Farads(4.7e-6), Volts(0.6), Volts(1.1)),
        DcDcConverter::new(Volts(0.5)),
    );
    let sensor = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    let mut sensing_loop = SensorLoop::new(
        chain,
        sensor,
        vec![Volts(0.3), Volts(0.5), Volts(0.7), Volts(1.0)],
        Volts(0.45),
        Volts(0.85),
        Seconds(1e-3),
    );
    let records = sensing_loop.run(60, 150e-6);
    for r in records.iter().step_by(12) {
        println!(
            "  t = {:>5.1} ms  reservoir {:>4.0} mV (sensor read {:>4.0} mV, code {:>4})  rail -> {:.1} V",
            r.t.0 * 1e3,
            r.v_store.0 * 1e3,
            r.estimate.0 * 1e3,
            r.code,
            r.v_out.0
        );
    }
    let report = sensing_loop.chain().report();
    println!(
        "  end-to-end: harvested {:.1} µJ, delivered {:.1} µJ, deficit {:.2} µJ\n",
        report.harvested.0 * 1e6,
        report.delivered.0 * 1e6,
        report.deficit.0 * 1e6
    );

    println!("== 3. Holistic adaptation vs a fixed-rail design (Fig. 3) ==");
    let experiment = HolisticExperiment::new_default();
    let adaptive = experiment.run(true);
    let fixed = experiment.run(false);
    println!(
        "  adaptive  : {:>2} tasks done, {:>6.1} µJ harvested, {:.2} completions/mJ",
        adaptive.completed,
        adaptive.harvested.0 * 1e6,
        adaptive.completions_per_joule * 1e-3
    );
    println!(
        "  fixed 1 V : {:>2} tasks done, {:>6.1} µJ harvested, {:.2} completions/mJ",
        fixed.completed,
        fixed.harvested.0 * 1e6,
        fixed.completions_per_joule * 1e-3
    );
    if fixed.completions_per_joule > 0.0 {
        println!(
            "  -> the power-adaptive system completes {:.1}x more work per joule",
            adaptive.completions_per_joule / fixed.completions_per_joule
        );
    } else {
        println!(
            "  -> the power-adaptive system completes work where the fixed design completes none"
        );
    }
}
