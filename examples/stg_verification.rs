//! Specify, check, simulate, verify: the asynchronous design flow in
//! one example.
//!
//! 1. Write the C-element's contract as a Signal Transition Graph.
//! 2. Check it is implementable (consistent, output-persistent).
//! 3. Simulate a gate-level C-element at 0.3 V.
//! 4. Verify the recorded waveform is a word of the STG's language.
//!
//! ```sh
//! cargo run --example stg_verification
//! ```

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::{GateKind, Netlist};
use energy_modulated::petri::{Polarity, Stg};
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

fn main() {
    println!("== 1. The specification (STG) ==");
    let (spec, a_sig, b_sig, c_sig) = Stg::c_element();
    println!(
        "  C-element STG: {} signals, {} transitions, {} places",
        spec.signal_count(),
        spec.net().transition_count(),
        spec.net().place_count()
    );

    println!();
    println!("== 2. Implementability checks ==");
    match spec.check(10_000) {
        Ok(()) => println!("  consistent and output-persistent: implementable as an SI circuit"),
        Err(e) => println!("  REJECTED: {e}"),
    }

    println!();
    println!("== 3. Gate-level simulation at 0.3 V ==");
    let mut nl = Netlist::new();
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.gate(GateKind::CElement, &[a, b], "c");
    nl.mark_output(c);
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(0.3)));
    sim.assign_all(d);
    sim.watch(a);
    sim.watch(b);
    sim.watch(c);
    sim.start();
    for (t_ns, net, v) in [
        (10.0, a, true),
        (25.0, b, true),
        (200.0, b, false),
        (210.0, a, false),
        (400.0, b, true),
        (405.0, a, true),
    ] {
        sim.schedule_input(net, Seconds(t_ns * 1e-9), v);
    }
    sim.run_until(Seconds(600e-9));
    println!(
        "  {} transitions recorded, {} hazards",
        sim.trace().len(),
        sim.hazards().len()
    );

    println!();
    println!("== 4. Conformance: is the waveform a word of the spec? ==");
    let word: Vec<_> = sim
        .trace()
        .entries()
        .iter()
        .map(|e| {
            let sig = if e.net == a {
                a_sig
            } else if e.net == b {
                b_sig
            } else {
                c_sig
            };
            let pol = if e.value {
                Polarity::Plus
            } else {
                Polarity::Minus
            };
            (sig, pol)
        })
        .collect();
    for (s, p) in &word {
        print!("  {}{}", spec.signal_name(*s), p);
    }
    println!();
    println!(
        "  spec.accepts(word) = {}",
        if spec.accepts(&word) {
            "YES — the circuit implements its contract"
        } else {
            "NO"
        }
    );

    println!();
    println!("== Bonus: the spec as Graphviz ==");
    let dot = spec.net().to_dot();
    println!(
        "  ({} bytes of dot; pipe to `dot -Tpng` to draw)",
        dot.len()
    );
    assert!(spec.accepts(&word), "conformance must hold");
}
