//! The speed-independent SRAM under an unstable supply (paper Figs. 5–7)
//! and the hybrid design-style controller (Fig. 2).
//!
//! ```sh
//! cargo run --example power_adaptive_memory
//! ```

use energy_modulated::core::hybrid::HybridController;
use energy_modulated::sram::{Sram, SramConfig, TimingDiscipline};
use energy_modulated::units::{Seconds, Volts, Waveform};

fn main() {
    let mut sram = Sram::new(SramConfig::paper_1kbit());

    println!("== Fig. 5: SRAM read delay in inverter delays ==");
    println!("  Vdd [V]   SRAM/inverter ratio");
    for (v, ratio) in sram
        .timing()
        .calibration()
        .mismatch_series(Volts(0.19), Volts(1.0), 9)
    {
        println!("   {:.2}        {:>6.1}", v.0, ratio);
    }
    println!("  (anchors: 50 at 1 V, 158 at 190 mV — as published)");

    println!();
    println!("== Timing disciplines across the voltage range ==");
    println!("  Vdd [V]   completion        bundled(2x @1V)   ");
    for v in [1.0, 0.6, 0.4, 0.3, 0.25] {
        let si = sram.read_at(Volts(v), 0, TimingDiscipline::Completion);
        let b = sram.read_at(Volts(v), 0, TimingDiscipline::bundled_nominal());
        println!(
            "   {:.2}     {:>9.1} ns OK    {:>9.1} ns {}",
            v,
            si.latency.0 * 1e9,
            b.latency.0 * 1e9,
            if b.correct { "OK" } else { "CORRUPT" }
        );
    }

    println!();
    println!("== Fig. 7: two writes under a rising supply ==");
    let supply = Waveform::pwl([
        (Seconds(0.0), 0.3),
        (Seconds(20e-6), 0.3),
        (Seconds(22e-6), 1.0),
    ]);
    let res = Seconds(50e-9);
    let horizon = Seconds(1.0);
    let w1 = sram.write_under(&supply, Seconds(0.0), 0, 0xAAAA, res, horizon);
    let w2 = sram.write_under(&supply, Seconds(25e-6), 1, 0x5555, res, horizon);
    println!(
        "  write #1 at Vdd = 0.30 V: {:>8.2} µs  ({} )",
        w1.latency.0 * 1e6,
        if w1.correct { "correct" } else { "failed" }
    );
    println!(
        "  write #2 at Vdd = 1.00 V: {:>8.2} µs  ({} )",
        w2.latency.0 * 1e6,
        if w2.correct { "correct" } else { "failed" }
    );
    println!(
        "  -> the self-timed SRAM simply takes {}x longer when starved",
        (w1.latency.0 / w2.latency.0).round()
    );

    println!();
    println!("== Energy per 16-bit write (paper: 5.8 pJ @ 1 V, 1.9 pJ @ 0.4 V) ==");
    for v in [1.0, 0.7, 0.5, 0.4, 0.3] {
        let w = sram.write_at(Volts(v), 2, 0x0F0F, TimingDiscipline::Completion);
        println!("   {:.1} V : {:>5.2} pJ", v, w.energy.0 * 1e12);
    }
    let (mep, e_min) = sram.energy_model().minimum_energy_point(
        sram.timing(),
        energy_modulated::sram::energy::Op::Write,
        Volts(0.15),
        Volts(1.0),
        400,
    );
    println!(
        "  minimum energy point: {:.0} mV at {:.2} pJ (paper: 400 mV)",
        mep.0 * 1e3,
        e_min.0 * 1e12
    );

    println!();
    println!("== The hybrid controller (Fig. 2) ==");
    let ctl = HybridController::new_default();
    println!(
        "  switch threshold from the bundled failure analysis: {:.0} mV",
        ctl.threshold().0 * 1e3
    );
    for v in [0.25, 0.4, 0.6, 1.0] {
        println!(
            "  at {:.2} V the controller selects: {}",
            v,
            ctl.choose(Volts(v))
        );
    }
}
