//! Dual-rail computation with completion detection: a DIMS ripple-carry
//! adder doing real arithmetic across the whole voltage range — the
//! "Design 1" style of the paper applied to datapath logic.
//!
//! ```sh
//! cargo run --example dual_rail_alu
//! ```

use energy_modulated::device::DeviceModel;
use energy_modulated::netlist::Netlist;
use energy_modulated::selftimed::DualRailAdder;
use energy_modulated::sim::{Simulator, SupplyKind};
use energy_modulated::units::{Seconds, Waveform};

fn adder_at(vdd: f64) -> (Simulator, DualRailAdder) {
    let mut nl = Netlist::new();
    let adder = DualRailAdder::build(&mut nl, 8, "alu");
    let mut sim = Simulator::new(nl, DeviceModel::umc90());
    let d = sim.add_domain("vdd", SupplyKind::ideal(Waveform::constant(vdd)));
    sim.assign_all(d);
    sim.start();
    sim.run_to_quiescence(100_000);
    (sim, adder)
}

fn main() {
    println!("== An 8-bit DIMS dual-rail adder: same answers, any voltage ==");
    println!();
    println!("  Vdd [V]   137 + 85   latency        energy/add");
    for vdd in [1.0, 0.6, 0.4, 0.3, 0.2] {
        let (mut sim, adder) = adder_at(vdd);
        let t0 = sim.now();
        let e0 = sim.energy_drawn(sim.domain_id(0));
        let deadline = Seconds(t0.0 + 10.0);
        let sum = adder.add(&mut sim, 137, 85, deadline).expect("completes");
        let dt = sim.now().0 - t0.0;
        let de = sim.energy_drawn(sim.domain_id(0)).0 - e0.0;
        println!(
            "   {vdd:>4.1}      {sum:>5}     {:>9.2} ns   {:>8.1} fJ   {}",
            dt * 1e9,
            de * 1e15,
            if sum == 222 { "ok" } else { "WRONG" }
        );
        assert_eq!(sum, 222);
    }
    println!();
    println!("The completion detector *is* the clock: the adder simply takes");
    println!("longer when the supply is depleted, and its own 'done' signal");
    println!("tells the environment when the sum is trustworthy. No margins,");
    println!("no timing closure, no voltage dependence in the design at all.");
    println!();

    let (mut sim, adder) = adder_at(0.5);
    println!("== A few more sums at 0.5 V ==");
    for (x, y) in [(0, 0), (255, 255), (200, 55), (128, 127)] {
        let deadline = Seconds(sim.now().0 + 10.0);
        let s = adder.add(&mut sim, x, y, deadline).expect("completes");
        println!(
            "  {x:>3} + {y:>3} = {s:>3}  {}",
            if s == x + y { "ok" } else { "WRONG" }
        );
    }
    println!();
    println!(
        "gate count for the 8-bit adder: {} (DIMS pays in area for its independence)",
        sim.netlist().gate_count()
    );
}
