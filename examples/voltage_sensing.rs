//! The paper's three ways to know your own supply voltage:
//! charge-to-digital conversion (Figs. 9–11), the reference-free race
//! sensor (Fig. 12), and the conventional ring-oscillator baseline whose
//! accuracy dies with its time reference.
//!
//! ```sh
//! cargo run --example voltage_sensing
//! ```

use energy_modulated::sensors::{
    ChargeToDigitalConverter, ReferenceFreeSensor, RingOscillatorSensor,
};
use energy_modulated::units::{Farads, Seconds, Volts};

fn main() {
    println!("== Charge-to-digital converter (Fig. 11) ==");
    let adc = ChargeToDigitalConverter::new(Farads(2e-12), 12);
    println!("  Vin [V]   code   transitions   duration [µs]");
    for (v, r) in adc.code_curve(Volts(0.4), Volts(1.0), 7) {
        println!(
            "   {:.2}    {:>5}   {:>8}      {:>8.2}",
            v.0,
            r.code,
            r.transitions,
            r.duration.0 * 1e6
        );
    }

    println!();
    println!("== Reference-free race sensor (Fig. 12) ==");
    let sensor = ReferenceFreeSensor::new(8);
    println!("  true [mV]   code   decoded [mV]   error [mV]");
    for mv in (200..=1000).step_by(100) {
        let v = Volts(mv as f64 / 1000.0);
        let code = sensor.measure(v);
        let decoded = sensor.decode(code);
        println!(
            "    {:>4}     {:>5}      {:>4.0}          {:>4.1}",
            mv,
            code,
            decoded.0 * 1e3,
            (decoded.0 - v.0).abs() * 1e3
        );
    }
    println!(
        "  worst-case error over 0.2-1.0 V: {:.1} mV (paper: 10 mV)",
        sensor.worst_case_error().0 * 1e3
    );

    println!();
    println!("== Ring-oscillator baseline: accuracy needs a reference ==");
    let ring = RingOscillatorSensor::new(31, Seconds(1e-6));
    println!("  clock error   voltage error at 0.5 V");
    for rel in [0.0, 0.02, 0.05, 0.10] {
        let err = ring.error_with_reference(Volts(0.5), rel);
        println!("    {:>4.0} %        {:>5.1} mV", rel * 100.0, err.0 * 1e3);
    }
    println!();
    println!("The race sensor needs no clock at all: its 'ruler' and its");
    println!("'runner' both scale with the measured voltage, and only their");
    println!("mismatch (the paper's Fig. 5) carries the information.");
}
